//! Set-associative cache model with per-owner occupancy accounting.
//!
//! The LLC contention the Kyoto paper addresses is an eviction phenomenon:
//! lines of a *sensitive* VM are evicted by the access stream of a
//! *disruptive* VM sharing the same set-associative last-level cache. This
//! module models exactly that mechanism: a cache is a vector of sets, each a
//! small array of tagged lines ordered by recency, and every line remembers
//! which owner (VM) inserted it so that pollution can be attributed.

use crate::error::SimError;
use crate::replacement::{InsertPosition, ReplacementPolicy, ReplacementState};
use serde::{Deserialize, Serialize};

/// Identifier of the entity (typically a VM) that owns a cache line.
///
/// Owner `0` is reserved for "nobody/hypervisor"; workloads attached to VMs
/// use the VM's numeric id.
pub type OwnerId = u16;

/// Geometry of a cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Cache line size in bytes.
    pub line_size: u32,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates an LRU cache configuration.
    pub fn new(size_bytes: u64, ways: u32, line_size: u32) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_size,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Returns the same geometry with a different replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] when the geometry is
    /// impossible (zero sizes, capacity not divisible by `ways * line_size`).
    pub fn num_sets(&self) -> Result<u64, SimError> {
        if self.size_bytes == 0 || self.ways == 0 || self.line_size == 0 {
            return Err(SimError::InvalidCacheConfig {
                reason: format!(
                    "size ({}), ways ({}) and line size ({}) must all be non-zero",
                    self.size_bytes, self.ways, self.line_size
                ),
            });
        }
        let way_bytes = u64::from(self.ways) * u64::from(self.line_size);
        if self.size_bytes % way_bytes != 0 {
            return Err(SimError::InvalidCacheConfig {
                reason: format!(
                    "size {} is not a multiple of ways*line_size = {}",
                    self.size_bytes, way_bytes
                ),
            });
        }
        Ok(self.size_bytes / way_bytes)
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / u64::from(self.line_size)
    }

    /// Divides the capacity by `factor`, keeping associativity and line size.
    ///
    /// Used to build scaled-down machines that exhibit the same contention
    /// behaviour with proportionally smaller working sets, so experiments run
    /// quickly. `factor` values that would drop below one set are clamped.
    pub fn scaled(&self, factor: u64) -> Self {
        let min_size = u64::from(self.ways) * u64::from(self.line_size);
        let size = (self.size_bytes / factor.max(1)).max(min_size);
        // Round down to a whole number of sets.
        let sets = (size / min_size).max(1);
        CacheConfig {
            size_bytes: sets * min_size,
            ways: self.ways,
            line_size: self.line_size,
            policy: self.policy,
        }
    }
}

/// Aggregate statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Valid lines evicted to make room for a fill.
    pub evictions: u64,
    /// Evictions where the evicted line belonged to a different owner than
    /// the inserting access ("pollution" events in the paper's terminology).
    pub cross_owner_evictions: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; `0` when the cache was never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; `0` when the cache was never accessed.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Result of a single cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Owner of a valid line evicted by the fill triggered by this access.
    pub evicted_owner: Option<OwnerId>,
}

#[derive(Debug, Clone, Copy)]
struct CacheLine {
    tag: u64,
    owner: OwnerId,
    last_use: u64,
    valid: bool,
}

impl CacheLine {
    const INVALID: CacheLine = CacheLine {
        tag: 0,
        owner: 0,
        last_use: 0,
        valid: false,
    };
}

/// A set-associative cache.
///
/// Addresses are split into `(tag, set, offset)` using the configured line
/// size and set count. Different owners never share lines (the engine places
/// every owner in a disjoint address-space slice), but they do share sets —
/// which is precisely how LLC contention arises.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    num_sets: u64,
    lines: Vec<CacheLine>,
    replacement: ReplacementState,
    clock: u64,
    stats: CacheStats,
    // Per-owner counters indexed by owner id (owner ids are small: VM ids).
    owner_lines: Vec<u64>,
    owner_misses: Vec<u64>,
    owner_accesses: Vec<u64>,
}

fn bump(counters: &mut Vec<u64>, owner: OwnerId, delta: i64) {
    let idx = usize::from(owner);
    if counters.len() <= idx {
        counters.resize(idx + 1, 0);
    }
    if delta >= 0 {
        counters[idx] += delta as u64;
    } else {
        counters[idx] = counters[idx].saturating_sub((-delta) as u64);
    }
}

fn read(counters: &[u64], owner: OwnerId) -> u64 {
    counters.get(usize::from(owner)).copied().unwrap_or(0)
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if the geometry is invalid.
    pub fn new(config: CacheConfig) -> Result<Self, SimError> {
        Self::with_seed(config, 0x6b796f746f)
    }

    /// Builds a cache with an explicit seed for the replacement-policy RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if the geometry is invalid.
    pub fn with_seed(config: CacheConfig, seed: u64) -> Result<Self, SimError> {
        let num_sets = config.num_sets()?;
        let total_lines = (num_sets * u64::from(config.ways)) as usize;
        Ok(Cache {
            replacement: ReplacementState::new(config.policy, seed),
            config,
            num_sets,
            lines: vec![CacheLine::INVALID; total_lines],
            clock: 0,
            stats: CacheStats::default(),
            owner_lines: Vec::new(),
            owner_misses: Vec::new(),
            owner_accesses: Vec::new(),
        })
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Aggregate statistics since construction or the last [`Cache::reset_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        self.owner_misses.clear();
        self.owner_accesses.clear();
    }

    /// Number of valid lines currently owned by `owner`.
    pub fn occupancy_of(&self, owner: OwnerId) -> u64 {
        read(&self.owner_lines, owner)
    }

    /// Total number of valid lines.
    pub fn occupancy(&self) -> u64 {
        self.owner_lines.iter().sum()
    }

    /// Misses attributed to `owner` since the last stats reset.
    pub fn misses_of(&self, owner: OwnerId) -> u64 {
        read(&self.owner_misses, owner)
    }

    /// Accesses attributed to `owner` since the last stats reset.
    pub fn accesses_of(&self, owner: OwnerId) -> u64 {
        read(&self.owner_accesses, owner)
    }

    fn set_of(&self, addr: u64) -> u64 {
        (addr / u64::from(self.config.line_size)) % self.num_sets
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr / u64::from(self.config.line_size)) / self.num_sets
    }

    /// Performs a lookup, filling the line on a miss.
    ///
    /// Returns whether the access hit and, on a miss that displaced a valid
    /// line, the owner of the evicted line.
    pub fn access(&mut self, addr: u64, owner: OwnerId) -> LookupResult {
        self.clock += 1;
        self.stats.accesses += 1;
        bump(&mut self.owner_accesses, owner, 1);

        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;

        // Hit path: promote to MRU.
        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag && line.owner == owner {
                line.last_use = self.clock;
                self.stats.hits += 1;
                return LookupResult {
                    hit: true,
                    evicted_owner: None,
                };
            }
        }

        // Miss path.
        self.stats.misses += 1;
        bump(&mut self.owner_misses, owner, 1);
        self.replacement
            .on_miss(set, self.num_sets as usize);

        // Prefer an invalid way.
        let mut victim_way = None;
        for way in 0..ways {
            if !self.lines[base + way].valid {
                victim_way = Some(way);
                break;
            }
        }
        let (victim_way, evicted_owner) = match victim_way {
            Some(way) => (way, None),
            None => {
                let timestamps: Vec<u64> =
                    (0..ways).map(|w| self.lines[base + w].last_use).collect();
                let way = self.replacement.pick_victim(&timestamps);
                let evicted = self.lines[base + way];
                self.stats.evictions += 1;
                if evicted.owner != owner {
                    self.stats.cross_owner_evictions += 1;
                }
                bump(&mut self.owner_lines, evicted.owner, -1);
                (way, Some(evicted.owner))
            }
        };

        let insert_pos = self
            .replacement
            .insert_position(set, self.num_sets as usize);
        // LRU insertion is modelled by giving the line the oldest timestamp
        // in the set (it becomes the next victim unless reused).
        let last_use = match insert_pos {
            InsertPosition::Mru => self.clock,
            InsertPosition::Lru => {
                let oldest = (0..ways)
                    .filter(|&w| w != victim_way && self.lines[base + w].valid)
                    .map(|w| self.lines[base + w].last_use)
                    .min()
                    .unwrap_or(self.clock);
                oldest.saturating_sub(1)
            }
        };

        self.lines[base + victim_way] = CacheLine {
            tag,
            owner,
            last_use,
            valid: true,
        };
        bump(&mut self.owner_lines, owner, 1);

        LookupResult {
            hit: false,
            evicted_owner,
        }
    }

    /// Checks whether `addr` is resident for `owner` without touching
    /// recency or statistics.
    pub fn probe(&self, addr: u64, owner: OwnerId) -> bool {
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        (0..ways).any(|way| {
            let line = &self.lines[base + way];
            line.valid && line.tag == tag && line.owner == owner
        })
    }

    /// Invalidates every line belonging to `owner` (e.g. on VM destruction).
    pub fn flush_owner(&mut self, owner: OwnerId) {
        for line in &mut self.lines {
            if line.valid && line.owner == owner {
                line.valid = false;
            }
        }
        if let Some(count) = self.owner_lines.get_mut(usize::from(owner)) {
            *count = 0;
        }
    }

    /// Invalidates every line in the cache.
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
        self.owner_lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32) -> Cache {
        // 4 sets x `ways` ways x 64-byte lines.
        Cache::new(CacheConfig::new(u64::from(ways) * 4 * 64, ways, 64)).unwrap()
    }

    #[test]
    fn geometry_is_computed_correctly() {
        let config = CacheConfig::new(10 * 1024 * 1024, 20, 64);
        assert_eq!(config.num_sets().unwrap(), 8192);
        assert_eq!(config.num_lines(), 163_840);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(CacheConfig::new(0, 8, 64).num_sets().is_err());
        assert!(CacheConfig::new(1000, 8, 64).num_sets().is_err());
        assert!(Cache::new(CacheConfig::new(4096, 0, 64)).is_err());
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut cache = small_cache(2);
        assert!(!cache.access(0x1000, 1).hit);
        assert!(cache.access(0x1000, 1).hit);
        assert_eq!(cache.stats().accesses, 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn different_owners_do_not_share_lines() {
        let mut cache = small_cache(4);
        cache.access(0x1000, 1);
        // Same address but another owner: must miss (owners live in disjoint
        // guest-physical spaces; sharing would hide contention).
        assert!(!cache.access(0x1000, 2).hit);
    }

    #[test]
    fn lru_evicts_oldest_line_in_full_set() {
        let mut cache = small_cache(2);
        let set_stride = 4 * 64; // 4 sets * 64B lines: same set every stride.
        cache.access(0, 1);
        cache.access(set_stride, 1);
        // Touch line 0 again so line at `set_stride` becomes LRU.
        cache.access(0, 1);
        // Third distinct line in the same set evicts the LRU one.
        cache.access(2 * set_stride, 1);
        assert!(cache.probe(0, 1));
        assert!(!cache.probe(set_stride, 1));
        assert!(cache.probe(2 * set_stride, 1));
    }

    #[test]
    fn cross_owner_eviction_is_counted() {
        let mut cache = small_cache(1);
        cache.access(0, 1);
        let result = cache.access(0, 2); // same set, different owner, 1-way
        assert!(!result.hit);
        assert_eq!(result.evicted_owner, Some(1));
        assert_eq!(cache.stats().cross_owner_evictions, 1);
    }

    #[test]
    fn occupancy_tracks_insertions_and_evictions() {
        let mut cache = small_cache(2);
        for i in 0..4u64 {
            cache.access(i * 64, 1);
        }
        assert_eq!(cache.occupancy_of(1), 4);
        assert_eq!(cache.occupancy(), 4);
        // Fill the whole cache with owner 2: owner 1 lines get evicted.
        for i in 0..8u64 {
            cache.access(i * 64, 2);
        }
        assert_eq!(cache.occupancy_of(2), 8);
        assert_eq!(cache.occupancy_of(1), 0);
        assert!(cache.occupancy() <= cache.config().num_lines());
    }

    #[test]
    fn flush_owner_removes_only_that_owner() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.access(64, 2);
        cache.flush_owner(1);
        assert!(!cache.probe(0, 1));
        assert!(cache.probe(64, 2));
    }

    #[test]
    fn flush_clears_everything() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.flush();
        assert_eq!(cache.occupancy(), 0);
        assert!(!cache.probe(0, 1));
    }

    #[test]
    fn per_owner_miss_accounting() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.access(0, 1);
        cache.access(64, 2);
        assert_eq!(cache.misses_of(1), 1);
        assert_eq!(cache.accesses_of(1), 2);
        assert_eq!(cache.misses_of(2), 1);
        assert_eq!(cache.misses_of(3), 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.reset_stats();
        assert_eq!(cache.stats().accesses, 0);
        assert!(cache.access(0, 1).hit, "contents must survive a stats reset");
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut cache = small_cache(2);
        assert_eq!(cache.stats().miss_ratio(), 0.0);
        for i in 0..100u64 {
            cache.access(i * 64, 1);
        }
        let stats = cache.stats();
        assert!(stats.miss_ratio() > 0.0 && stats.miss_ratio() <= 1.0);
        assert!((stats.miss_ratio() + stats.hit_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_config_preserves_ways_and_line_size() {
        let config = CacheConfig::new(10 * 1024 * 1024, 20, 64);
        let scaled = config.scaled(16);
        assert_eq!(scaled.ways, 20);
        assert_eq!(scaled.line_size, 64);
        assert_eq!(scaled.size_bytes, 10 * 1024 * 1024 / 16);
        assert!(scaled.num_sets().is_ok());
    }

    #[test]
    fn scaled_config_never_drops_below_one_set() {
        let config = CacheConfig::new(4096, 8, 64);
        let scaled = config.scaled(1_000_000);
        assert!(scaled.num_sets().unwrap() >= 1);
    }

    #[test]
    fn bip_protects_against_streaming() {
        // A small working set is repeatedly reused while a streaming scan
        // pours through the cache. BIP should keep more of the reused set
        // resident than LRU.
        let run = |policy: ReplacementPolicy| -> u64 {
            let config = CacheConfig::new(16 * 1024, 8, 64).with_policy(policy);
            let mut cache = Cache::new(config).unwrap();
            let reused: Vec<u64> = (0..32u64).map(|i| i * 64).collect();
            let mut stream_addr = 1 << 20;
            let mut reused_hits = 0;
            for round in 0..200 {
                for &addr in &reused {
                    if cache.access(addr, 1).hit && round > 0 {
                        reused_hits += 1;
                    }
                }
                for _ in 0..256 {
                    cache.access(stream_addr, 2);
                    stream_addr += 64;
                }
            }
            reused_hits
        };
        let lru_hits = run(ReplacementPolicy::Lru);
        let bip_hits = run(ReplacementPolicy::Bip);
        assert!(
            bip_hits > lru_hits,
            "BIP ({bip_hits}) should preserve the reused working set better than LRU ({lru_hits})"
        );
    }
}
