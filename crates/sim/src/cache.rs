//! Set-associative cache model with per-owner occupancy accounting.
//!
//! The LLC contention the Kyoto paper addresses is an eviction phenomenon:
//! lines of a *sensitive* VM are evicted by the access stream of a
//! *disruptive* VM sharing the same set-associative last-level cache. This
//! module models exactly that mechanism: a cache is a vector of sets, each a
//! small array of tagged lines ordered by recency, and every line remembers
//! which owner (VM) inserted it so that pollution can be attributed.

use crate::error::SimError;
use crate::replacement::{InsertPosition, ReplacementPolicy, ReplacementState};
use serde::{Deserialize, Serialize};

/// Identifier of the entity (typically a VM) that owns a cache line.
///
/// Owner `0` is reserved for "nobody/hypervisor"; workloads attached to VMs
/// use the VM's numeric id.
pub type OwnerId = u16;

/// Geometry of a cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Cache line size in bytes.
    pub line_size: u32,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates an LRU cache configuration.
    pub fn new(size_bytes: u64, ways: u32, line_size: u32) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_size,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Returns the same geometry with a different replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] when the geometry is
    /// impossible (zero sizes, capacity not divisible by `ways * line_size`).
    pub fn num_sets(&self) -> Result<u64, SimError> {
        if self.size_bytes == 0 || self.ways == 0 || self.line_size == 0 {
            return Err(SimError::InvalidCacheConfig {
                reason: format!(
                    "size ({}), ways ({}) and line size ({}) must all be non-zero",
                    self.size_bytes, self.ways, self.line_size
                ),
            });
        }
        let way_bytes = u64::from(self.ways) * u64::from(self.line_size);
        if !self.size_bytes.is_multiple_of(way_bytes) {
            return Err(SimError::InvalidCacheConfig {
                reason: format!(
                    "size {} is not a multiple of ways*line_size = {}",
                    self.size_bytes, way_bytes
                ),
            });
        }
        Ok(self.size_bytes / way_bytes)
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / u64::from(self.line_size)
    }

    /// Divides the capacity by `factor`, keeping associativity and line size.
    ///
    /// Used to build scaled-down machines that exhibit the same contention
    /// behaviour with proportionally smaller working sets, so experiments run
    /// quickly. `factor` values that would drop below one set are clamped.
    pub fn scaled(&self, factor: u64) -> Self {
        let min_size = u64::from(self.ways) * u64::from(self.line_size);
        let size = (self.size_bytes / factor.max(1)).max(min_size);
        // Round down to a whole number of sets.
        let sets = (size / min_size).max(1);
        CacheConfig {
            size_bytes: sets * min_size,
            ways: self.ways,
            line_size: self.line_size,
            policy: self.policy,
        }
    }
}

/// Aggregate statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Valid lines evicted to make room for a fill.
    pub evictions: u64,
    /// Evictions where the evicted line belonged to a different owner than
    /// the inserting access ("pollution" events in the paper's terminology).
    pub cross_owner_evictions: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; `0` when the cache was never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; `0` when the cache was never accessed.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Result of a single cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Owner of a valid line evicted by the fill triggered by this access.
    pub evicted_owner: Option<OwnerId>,
}

/// Packed line identity: `(tag << 17) | (owner << 1) | valid`. A lookup
/// compares one key per way instead of three fields, which keeps the scan
/// branch-light; `0` is the invalid line (valid bit clear).
type LineKey = u128;

#[inline]
fn key_of(tag: u64, owner: OwnerId) -> LineKey {
    (u128::from(tag) << 17) | (u128::from(owner) << 1) | 1
}

#[inline]
fn owner_of(key: LineKey) -> OwnerId {
    ((key >> 1) & 0xffff) as OwnerId
}

/// A set-associative cache.
///
/// Addresses are split into `(tag, set, offset)` using the configured line
/// size and set count. Different owners never share lines (the engine places
/// every owner in a disjoint address-space slice), but they do share sets —
/// which is precisely how LLC contention arises.
///
/// Each set's ways are stored *physically in recency order*: way 0 is the
/// MRU line, valid lines precede invalid ones, and the last valid way is the
/// LRU line. A hit therefore promotes by one short `copy_within`, the scan
/// stops at the first invalid way, and eviction needs no timestamp search —
/// the LRU victim is simply the last way.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    num_sets: u64,
    // Shift/mask address split, valid when `pow2_geometry` (power-of-two
    // line size and set count, which every modelled machine has). The
    // fallback div/mod path keeps arbitrary geometries working.
    pow2_geometry: bool,
    line_shift: u32,
    set_mask: u64,
    set_shift: u32,
    lines: Vec<LineKey>,
    replacement: ReplacementState,
    stats: CacheStats,
    // Per-owner counters indexed by owner id (owner ids are small: VM ids).
    // Pre-sized at construction / via `register_owner` so the access path
    // never reallocates; unregistered owners grow the tables once, off the
    // hot path.
    owner_lines: Vec<u64>,
    owner_misses: Vec<u64>,
    owner_accesses: Vec<u64>,
}

/// Owner ids the counter tables are pre-sized for; larger ids are still
/// valid and grow the tables once on first use (a cold path).
const PRESIZED_OWNERS: usize = 64;

#[cold]
#[inline(never)]
fn grow_counters(counters: &mut Vec<u64>, idx: usize) {
    counters.resize(idx + 1, 0);
}

#[inline]
fn counter(counters: &mut Vec<u64>, owner: OwnerId) -> &mut u64 {
    let idx = usize::from(owner);
    if idx >= counters.len() {
        grow_counters(counters, idx);
    }
    &mut counters[idx]
}

fn read(counters: &[u64], owner: OwnerId) -> u64 {
    counters.get(usize::from(owner)).copied().unwrap_or(0)
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if the geometry is invalid.
    pub fn new(config: CacheConfig) -> Result<Self, SimError> {
        Self::with_seed(config, 0x6b796f746f)
    }

    /// Builds a cache with an explicit seed for the replacement-policy RNG.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCacheConfig`] if the geometry is invalid.
    pub fn with_seed(config: CacheConfig, seed: u64) -> Result<Self, SimError> {
        let num_sets = config.num_sets()?;
        let total_lines = (num_sets * u64::from(config.ways)) as usize;
        let pow2_geometry = config.line_size.is_power_of_two() && num_sets.is_power_of_two();
        Ok(Cache {
            replacement: ReplacementState::new(config.policy, seed),
            pow2_geometry,
            line_shift: config.line_size.trailing_zeros(),
            set_mask: num_sets - 1,
            set_shift: num_sets.trailing_zeros(),
            config,
            num_sets,
            lines: vec![0; total_lines],
            stats: CacheStats::default(),
            owner_lines: vec![0; PRESIZED_OWNERS],
            owner_misses: vec![0; PRESIZED_OWNERS],
            owner_accesses: vec![0; PRESIZED_OWNERS],
        })
    }

    /// Pre-sizes the per-owner counter tables for `owner`, so no access by
    /// that owner ever reallocates them. Called by the hypervisor at VM
    /// registration; idempotent and safe to skip (the tables grow on demand
    /// off the hot path).
    pub fn register_owner(&mut self, owner: OwnerId) {
        let idx = usize::from(owner);
        if idx >= self.owner_lines.len() {
            grow_counters(&mut self.owner_lines, idx);
        }
        if idx >= self.owner_misses.len() {
            grow_counters(&mut self.owner_misses, idx);
        }
        if idx >= self.owner_accesses.len() {
            grow_counters(&mut self.owner_accesses, idx);
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_sets
    }

    /// Aggregate statistics since construction or the last [`Cache::reset_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        // Zero in place: clearing would drop the pre-sizing the hot path
        // relies on.
        self.owner_misses.fill(0);
        self.owner_accesses.fill(0);
    }

    /// Number of valid lines currently owned by `owner`.
    pub fn occupancy_of(&self, owner: OwnerId) -> u64 {
        read(&self.owner_lines, owner)
    }

    /// Total number of valid lines.
    pub fn occupancy(&self) -> u64 {
        self.owner_lines.iter().sum()
    }

    /// Misses attributed to `owner` since the last stats reset.
    pub fn misses_of(&self, owner: OwnerId) -> u64 {
        read(&self.owner_misses, owner)
    }

    /// Accesses attributed to `owner` since the last stats reset.
    pub fn accesses_of(&self, owner: OwnerId) -> u64 {
        read(&self.owner_accesses, owner)
    }

    /// Splits an address into its `(set, tag)` pair.
    #[inline]
    fn split(&self, addr: u64) -> (u64, u64) {
        if self.pow2_geometry {
            let line = addr >> self.line_shift;
            (line & self.set_mask, line >> self.set_shift)
        } else {
            let line = addr / u64::from(self.config.line_size);
            (line % self.num_sets, line / self.num_sets)
        }
    }

    /// Performs a lookup, filling the line on a miss.
    ///
    /// Returns whether the access hit and, on a miss that displaced a valid
    /// line, the owner of the evicted line.
    #[inline]
    pub fn access(&mut self, addr: u64, owner: OwnerId) -> LookupResult {
        self.stats.accesses += 1;
        *counter(&mut self.owner_accesses, owner) += 1;

        let (set, tag) = self.split(addr);
        let set = set as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let probe = key_of(tag, owner);

        // Fast path for plain LRU (the modelled machines' default): scan
        // and recency update fused into one slide pass. Every visited way
        // is shifted one position towards LRU while the probe key enters at
        // MRU, so a hit, a fill into a free way and an eviction of the last
        // way all fall out of the same loop with one load, one store and
        // two compares per way.
        if self.replacement.policy() == ReplacementPolicy::Lru {
            let mut slide = probe;
            for slot in &mut self.lines[base..base + ways] {
                let current = *slot;
                *slot = slide;
                if current == probe {
                    self.stats.hits += 1;
                    return LookupResult {
                        hit: true,
                        evicted_owner: None,
                    };
                }
                if current == 0 {
                    // Filled a free way.
                    self.stats.misses += 1;
                    *counter(&mut self.owner_misses, owner) += 1;
                    *counter(&mut self.owner_lines, owner) += 1;
                    return LookupResult {
                        hit: false,
                        evicted_owner: None,
                    };
                }
                slide = current;
            }
            // Full set: `slide` is the old LRU line, now evicted.
            self.stats.misses += 1;
            *counter(&mut self.owner_misses, owner) += 1;
            let evicted_owner = owner_of(slide);
            self.stats.evictions += 1;
            if evicted_owner != owner {
                self.stats.cross_owner_evictions += 1;
            }
            let lines = counter(&mut self.owner_lines, evicted_owner);
            *lines = lines.saturating_sub(1);
            *counter(&mut self.owner_lines, owner) += 1;
            return LookupResult {
                hit: false,
                evicted_owner: Some(evicted_owner),
            };
        }

        // General path (BIP/DIP/Random): scan in recency order, one
        // packed-key comparison per way; the first invalid way ends the
        // valid region, so the scan stops there.
        let mut way = 0;
        while way < ways {
            let key = self.lines[base + way];
            if key == probe {
                // Hit: promote to MRU by rotating the more-recent lines
                // down one way (a manual rotate inlines; `copy_within`
                // would emit a memmove call dwarfing these few moves).
                let mut slide = probe;
                for slot in &mut self.lines[base..=base + way] {
                    std::mem::swap(slot, &mut slide);
                }
                self.stats.hits += 1;
                return LookupResult {
                    hit: true,
                    evicted_owner: None,
                };
            }
            if key == 0 {
                break;
            }
            way += 1;
        }
        // `way` is now the first free way of the set, or `ways` if full.

        self.stats.misses += 1;
        *counter(&mut self.owner_misses, owner) += 1;
        self.replacement.on_miss(set, self.num_sets as usize);

        let (valid_end, evicted_owner) = if way < ways {
            // A free way exists: a fill, not an eviction.
            (way, None)
        } else {
            // Full set: the LRU victim is the last way; Random picks any.
            let victim = self.replacement.pick_victim_prescanned(ways - 1, ways);
            let evicted_owner = owner_of(self.lines[base + victim]);
            self.stats.evictions += 1;
            if evicted_owner != owner {
                self.stats.cross_owner_evictions += 1;
            }
            let lines = counter(&mut self.owner_lines, evicted_owner);
            *lines = lines.saturating_sub(1);
            // Close the victim's gap; the set now has `ways - 1` valid
            // lines and the insert below fills the last one.
            for way in victim..ways - 1 {
                self.lines[base + way] = self.lines[base + way + 1];
            }
            (ways - 1, Some(evicted_owner))
        };

        match self
            .replacement
            .insert_position(set, self.num_sets as usize)
        {
            InsertPosition::Mru => {
                let mut slide = probe;
                for slot in &mut self.lines[base..=base + valid_end] {
                    std::mem::swap(slot, &mut slide);
                }
            }
            // LRU insertion: the line becomes the next victim unless reused.
            InsertPosition::Lru => self.lines[base + valid_end] = probe,
        }
        *counter(&mut self.owner_lines, owner) += 1;

        LookupResult {
            hit: false,
            evicted_owner,
        }
    }

    /// Checks whether `addr` is resident for `owner` without touching
    /// recency or statistics.
    pub fn probe(&self, addr: u64, owner: OwnerId) -> bool {
        let (set, tag) = self.split(addr);
        let set = set as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let probe = key_of(tag, owner);
        self.lines[base..base + ways].contains(&probe)
    }

    /// Invalidates every line belonging to `owner` (e.g. on VM destruction
    /// or the extraction half of a live migration), compacting each set so
    /// surviving lines keep their recency order. Returns the number of lines
    /// invalidated — the cache footprint the owner loses.
    pub fn flush_owner(&mut self, owner: OwnerId) -> u64 {
        let ways = self.config.ways as usize;
        let mut flushed = 0u64;
        for set in self.lines.chunks_mut(ways) {
            let mut kept = 0;
            for way in 0..ways {
                let key = set[way];
                if key == 0 {
                    break;
                }
                if owner_of(key) != owner {
                    set[kept] = key;
                    kept += 1;
                } else {
                    flushed += 1;
                }
            }
            set[kept..].fill(0);
        }
        if let Some(count) = self.owner_lines.get_mut(usize::from(owner)) {
            *count = 0;
        }
        flushed
    }

    /// Invalidates every line in the cache.
    pub fn flush(&mut self) {
        self.lines.fill(0);
        self.owner_lines.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32) -> Cache {
        // 4 sets x `ways` ways x 64-byte lines.
        Cache::new(CacheConfig::new(u64::from(ways) * 4 * 64, ways, 64)).unwrap()
    }

    #[test]
    fn geometry_is_computed_correctly() {
        let config = CacheConfig::new(10 * 1024 * 1024, 20, 64);
        assert_eq!(config.num_sets().unwrap(), 8192);
        assert_eq!(config.num_lines(), 163_840);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(CacheConfig::new(0, 8, 64).num_sets().is_err());
        assert!(CacheConfig::new(1000, 8, 64).num_sets().is_err());
        assert!(Cache::new(CacheConfig::new(4096, 0, 64)).is_err());
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut cache = small_cache(2);
        assert!(!cache.access(0x1000, 1).hit);
        assert!(cache.access(0x1000, 1).hit);
        assert_eq!(cache.stats().accesses, 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn different_owners_do_not_share_lines() {
        let mut cache = small_cache(4);
        cache.access(0x1000, 1);
        // Same address but another owner: must miss (owners live in disjoint
        // guest-physical spaces; sharing would hide contention).
        assert!(!cache.access(0x1000, 2).hit);
    }

    #[test]
    fn lru_evicts_oldest_line_in_full_set() {
        let mut cache = small_cache(2);
        let set_stride = 4 * 64; // 4 sets * 64B lines: same set every stride.
        cache.access(0, 1);
        cache.access(set_stride, 1);
        // Touch line 0 again so line at `set_stride` becomes LRU.
        cache.access(0, 1);
        // Third distinct line in the same set evicts the LRU one.
        cache.access(2 * set_stride, 1);
        assert!(cache.probe(0, 1));
        assert!(!cache.probe(set_stride, 1));
        assert!(cache.probe(2 * set_stride, 1));
    }

    #[test]
    fn cross_owner_eviction_is_counted() {
        let mut cache = small_cache(1);
        cache.access(0, 1);
        let result = cache.access(0, 2); // same set, different owner, 1-way
        assert!(!result.hit);
        assert_eq!(result.evicted_owner, Some(1));
        assert_eq!(cache.stats().cross_owner_evictions, 1);
    }

    #[test]
    fn occupancy_tracks_insertions_and_evictions() {
        let mut cache = small_cache(2);
        for i in 0..4u64 {
            cache.access(i * 64, 1);
        }
        assert_eq!(cache.occupancy_of(1), 4);
        assert_eq!(cache.occupancy(), 4);
        // Fill the whole cache with owner 2: owner 1 lines get evicted.
        for i in 0..8u64 {
            cache.access(i * 64, 2);
        }
        assert_eq!(cache.occupancy_of(2), 8);
        assert_eq!(cache.occupancy_of(1), 0);
        assert!(cache.occupancy() <= cache.config().num_lines());
    }

    #[test]
    fn flush_owner_removes_only_that_owner() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.access(64, 2);
        cache.flush_owner(1);
        assert!(!cache.probe(0, 1));
        assert!(cache.probe(64, 2));
    }

    #[test]
    fn flush_clears_everything() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.flush();
        assert_eq!(cache.occupancy(), 0);
        assert!(!cache.probe(0, 1));
    }

    #[test]
    fn per_owner_miss_accounting() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.access(0, 1);
        cache.access(64, 2);
        assert_eq!(cache.misses_of(1), 1);
        assert_eq!(cache.accesses_of(1), 2);
        assert_eq!(cache.misses_of(2), 1);
        assert_eq!(cache.misses_of(3), 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut cache = small_cache(2);
        cache.access(0, 1);
        cache.reset_stats();
        assert_eq!(cache.stats().accesses, 0);
        assert!(
            cache.access(0, 1).hit,
            "contents must survive a stats reset"
        );
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut cache = small_cache(2);
        assert_eq!(cache.stats().miss_ratio(), 0.0);
        for i in 0..100u64 {
            cache.access(i * 64, 1);
        }
        let stats = cache.stats();
        assert!(stats.miss_ratio() > 0.0 && stats.miss_ratio() <= 1.0);
        assert!((stats.miss_ratio() + stats.hit_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_config_preserves_ways_and_line_size() {
        let config = CacheConfig::new(10 * 1024 * 1024, 20, 64);
        let scaled = config.scaled(16);
        assert_eq!(scaled.ways, 20);
        assert_eq!(scaled.line_size, 64);
        assert_eq!(scaled.size_bytes, 10 * 1024 * 1024 / 16);
        assert!(scaled.num_sets().is_ok());
    }

    #[test]
    fn scaled_config_never_drops_below_one_set() {
        let config = CacheConfig::new(4096, 8, 64);
        let scaled = config.scaled(1_000_000);
        assert!(scaled.num_sets().unwrap() >= 1);
    }

    #[test]
    fn bip_protects_against_streaming() {
        // A small working set is repeatedly reused while a streaming scan
        // pours through the cache. BIP should keep more of the reused set
        // resident than LRU.
        let run = |policy: ReplacementPolicy| -> u64 {
            let config = CacheConfig::new(16 * 1024, 8, 64).with_policy(policy);
            let mut cache = Cache::new(config).unwrap();
            let reused: Vec<u64> = (0..32u64).map(|i| i * 64).collect();
            let mut stream_addr = 1 << 20;
            let mut reused_hits = 0;
            for round in 0..200 {
                for &addr in &reused {
                    if cache.access(addr, 1).hit && round > 0 {
                        reused_hits += 1;
                    }
                }
                for _ in 0..256 {
                    cache.access(stream_addr, 2);
                    stream_addr += 64;
                }
            }
            reused_hits
        };
        let lru_hits = run(ReplacementPolicy::Lru);
        let bip_hits = run(ReplacementPolicy::Bip);
        assert!(
            bip_hits > lru_hits,
            "BIP ({bip_hits}) should preserve the reused working set better than LRU ({lru_hits})"
        );
    }
}
