//! Machine topology: sockets, cores, NUMA nodes, frequencies and latencies.
//!
//! [`MachineConfig::paper_machine`] reproduces Table 1 of the paper (the
//! Intel Xeon E5-1603 v3 testbed) and [`MachineConfig::paper_numa_machine`]
//! reproduces the two-socket PowerEdge R420 used for the socket-dedication
//! overhead experiment (Fig. 9). Scaled variants divide cache capacities and
//! frequency by a constant factor so that experiments complete quickly while
//! preserving the contention behaviour (working sets are scaled identically
//! by `kyoto-workloads`).

use crate::cache::{Cache, CacheConfig, CacheStats, OwnerId};
use crate::error::SimError;
use crate::hierarchy::{AccessKind, AccessOutcome, CoreCaches, MemLevel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical core (global across sockets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Identifier of a socket / package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub usize);

/// Identifier of a NUMA node. On the modelled machines NUMA nodes map 1:1 to
/// sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NumaNode(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "socket{}", self.0)
    }
}

impl fmt::Display for NumaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "numa{}", self.0)
    }
}

/// Access latencies in core cycles, as measured with lmbench on the paper's
/// testbed (Section 2.2.4): 4 / 12 / 45 / 180 cycles for L1 / L2 / LLC /
/// memory. The remote-memory latency models the QPI hop paid after a vCPU is
/// migrated away from its data by the socket-dedication monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// L1 hit latency.
    pub l1: u32,
    /// L2 hit latency.
    pub l2: u32,
    /// LLC hit latency.
    pub llc: u32,
    /// Local-memory access latency (LLC miss).
    pub local_mem: u32,
    /// Remote-memory access latency (LLC miss served across the interconnect).
    pub remote_mem: u32,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1: 4,
            l2: 12,
            llc: 45,
            local_mem: 180,
            remote_mem: 300,
        }
    }
}

impl LatencyConfig {
    /// Latency of an access satisfied at `level`.
    pub fn of(&self, level: MemLevel) -> u32 {
        match level {
            MemLevel::L1 => self.l1,
            MemLevel::L2 => self.l2,
            MemLevel::Llc => self.llc,
            MemLevel::LocalMemory => self.local_mem,
            MemLevel::RemoteMemory => self.remote_mem,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of sockets (each socket is one NUMA node).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Core frequency in kHz. Because 1 kHz is one cycle per millisecond,
    /// this value is also the cycle budget of one millisecond of simulated
    /// time, and it is the `cpu_freq_khz` term of the paper's Equation 1.
    pub freq_khz: u64,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Shared last-level cache geometry (one instance per socket).
    pub llc: CacheConfig,
    /// Hierarchy latencies.
    pub latency: LatencyConfig,
}

impl MachineConfig {
    /// The paper's experimental machine (Table 1): one socket, four cores,
    /// 32 KB + 32 KB 8-way L1, 256 KB 8-way L2, 10 MB 20-way LLC, 2.8 GHz.
    pub fn paper_machine() -> Self {
        MachineConfig {
            sockets: 1,
            cores_per_socket: 4,
            freq_khz: 2_800_000,
            l1d: CacheConfig::new(32 * 1024, 8, 64),
            l1i: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(256 * 1024, 8, 64),
            llc: CacheConfig::new(10 * 1024 * 1024, 20, 64),
            latency: LatencyConfig::default(),
        }
    }

    /// The two-socket NUMA machine (PowerEdge R420) used for the
    /// socket-dedication overhead experiment of Fig. 9.
    pub fn paper_numa_machine() -> Self {
        MachineConfig {
            sockets: 2,
            ..Self::paper_machine()
        }
    }

    /// A scaled-down version of [`MachineConfig::paper_machine`]: cache
    /// capacities and frequency divided by `factor`.
    ///
    /// Contention is a function of the ratio between working-set sizes and
    /// cache capacity, so scaling both by the same factor (workloads are
    /// scaled in `kyoto-workloads`) preserves the phenomena of every figure
    /// while letting experiments run in milliseconds of wall-clock time.
    pub fn scaled_paper_machine(factor: u64) -> Self {
        Self::paper_machine().scaled(factor)
    }

    /// A scaled-down version of [`MachineConfig::paper_numa_machine`].
    pub fn scaled_paper_numa_machine(factor: u64) -> Self {
        Self::paper_numa_machine().scaled(factor)
    }

    /// A cloud-scale consolidation machine: the paper's per-socket geometry
    /// (Table 1 caches, four cores, one NUMA node per socket) replicated
    /// across `sockets` sockets. This is the machine the cloudscale scenario
    /// sweeps — consolidator-style fan-out across many sockets rather than
    /// the paper's single testbed box.
    pub fn cloud_machine(sockets: usize) -> Self {
        Self::paper_machine().with_sockets(sockets)
    }

    /// A scaled-down version of [`MachineConfig::cloud_machine`].
    pub fn scaled_cloud_machine(sockets: usize, factor: u64) -> Self {
        Self::cloud_machine(sockets).scaled(factor)
    }

    /// Replaces the socket count, keeping the per-socket geometry.
    pub fn with_sockets(mut self, sockets: usize) -> Self {
        self.sockets = sockets.max(1);
        self
    }

    /// Replaces the per-socket core count, keeping everything else.
    pub fn with_cores_per_socket(mut self, cores: usize) -> Self {
        self.cores_per_socket = cores.max(1);
        self
    }

    /// Divides cache capacities and frequency by `factor`.
    pub fn scaled(&self, factor: u64) -> Self {
        let factor = factor.max(1);
        MachineConfig {
            sockets: self.sockets,
            cores_per_socket: self.cores_per_socket,
            freq_khz: (self.freq_khz / factor).max(1_000),
            l1d: self.l1d.scaled(factor),
            l1i: self.l1i.scaled(factor),
            l2: self.l2.scaled(factor),
            llc: self.llc.scaled(factor),
            latency: self.latency,
        }
    }

    /// Replaces the LLC replacement policy (used by the replacement ablation).
    pub fn with_llc_policy(mut self, policy: crate::replacement::ReplacementPolicy) -> Self {
        self.llc = self.llc.with_policy(policy);
        self
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Cycles available in one millisecond of simulated time.
    pub fn cycles_per_ms(&self) -> u64 {
        self.freq_khz
    }

    /// The global id of core `index` of `socket`, or `None` when either
    /// index is out of range. Inverse of [`MachineConfig::socket_of_core`]:
    /// placement policies use the pair to convert between the
    /// (socket, core-within-socket) coordinates they reason in and the
    /// global core ids the scheduler pins vCPUs to.
    pub fn core_on(&self, socket: SocketId, index: usize) -> Option<CoreId> {
        (socket.0 < self.sockets && index < self.cores_per_socket)
            .then(|| CoreId(socket.0 * self.cores_per_socket + index))
    }

    /// The socket a global core id belongs to, or `None` when out of range.
    pub fn socket_of_core(&self, core: CoreId) -> Option<SocketId> {
        (core.0 < self.num_cores()).then(|| SocketId(core.0 / self.cores_per_socket))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMachineConfig`] when the machine has no
    /// cores or a zero frequency, and [`SimError::InvalidCacheConfig`] when
    /// any cache geometry is invalid.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.sockets == 0 || self.cores_per_socket == 0 {
            return Err(SimError::InvalidMachineConfig {
                reason: "machine must have at least one socket and one core per socket".into(),
            });
        }
        if self.freq_khz == 0 {
            return Err(SimError::InvalidMachineConfig {
                reason: "core frequency must be non-zero".into(),
            });
        }
        self.l1d.num_sets()?;
        self.l1i.num_sets()?;
        self.l2.num_sets()?;
        self.llc.num_sets()?;
        Ok(())
    }
}

/// A pre-resolved access path for one slot: socket and core indices plus
/// the remote-on-miss decision, computed once per scheduling quantum
/// instead of once per memory access (see [`Machine::route`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRoute {
    socket: usize,
    core_idx: usize,
    remote_on_miss: bool,
}

impl AccessRoute {
    /// Index of the socket this route resolves to. The engine's
    /// socket-parallel path uses it to assign each slot to the execution
    /// group that owns the slot's socket.
    pub fn socket_index(&self) -> usize {
        self.socket
    }
}

/// One socket: a shared LLC plus the private caches of its cores.
#[derive(Debug, Clone)]
pub struct Socket {
    id: SocketId,
    llc: Cache,
    cores: Vec<CoreCaches>,
}

impl Socket {
    /// The socket id.
    pub fn id(&self) -> SocketId {
        self.id
    }

    /// The one canonical body of a routed access: walk the private caches
    /// and the shared LLC, apply the route's remote-on-miss decision, charge
    /// the level's latency. [`Machine::access_routed`], [`Machine::access`]
    /// and [`SocketView::access_routed`] all delegate here, so the serial
    /// and socket-parallel engine paths cannot drift apart.
    #[inline]
    fn walk_routed(
        &mut self,
        route: AccessRoute,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
        latency: &LatencyConfig,
    ) -> AccessOutcome {
        debug_assert_eq!(
            route.socket, self.id.0,
            "route resolved for a different socket"
        );
        let (level, polluted) = self.cores[route.core_idx].walk(&mut self.llc, addr, kind, owner);
        let level = if level == MemLevel::LocalMemory && route.remote_on_miss {
            MemLevel::RemoteMemory
        } else {
            level
        };
        AccessOutcome {
            level,
            latency: latency.of(level),
            polluted_llc: polluted,
        }
    }

    /// Statistics of the shared LLC.
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// Immutable view of the shared LLC.
    pub fn llc(&self) -> &Cache {
        &self.llc
    }
}

/// A simulated physical machine.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    sockets: Vec<Socket>,
}

impl Machine {
    /// Builds the machine described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`Machine::try_new`] to handle invalid configurations gracefully.
    pub fn new(config: MachineConfig) -> Self {
        Self::try_new(config).expect("invalid machine configuration")
    }

    /// Builds the machine described by `config`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SimError`] if the configuration is invalid.
    pub fn try_new(config: MachineConfig) -> Result<Self, SimError> {
        config.validate()?;
        let mut sockets = Vec::with_capacity(config.sockets);
        for s in 0..config.sockets {
            let llc_seed = 0x11c + s as u64;
            let mut cores = Vec::with_capacity(config.cores_per_socket);
            for c in 0..config.cores_per_socket {
                cores.push(CoreCaches::new(
                    config.l1d.clone(),
                    config.l1i.clone(),
                    config.l2.clone(),
                    (s * 31 + c) as u64,
                )?);
            }
            sockets.push(Socket {
                id: SocketId(s),
                llc: Cache::with_seed(config.llc.clone(), llc_seed)?,
                cores,
            });
        }
        Ok(Machine { config, sockets })
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Total number of cores.
    pub fn num_cores(&self) -> usize {
        self.config.num_cores()
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> usize {
        self.config.sockets
    }

    /// All core ids of the machine.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.num_cores()).map(CoreId)
    }

    /// Core ids belonging to `socket`.
    pub fn cores_of_socket(&self, socket: SocketId) -> Vec<CoreId> {
        let per = self.config.cores_per_socket;
        (0..per).map(|c| CoreId(socket.0 * per + c)).collect()
    }

    /// The socket a core belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCore`] for out-of-range cores.
    pub fn socket_of(&self, core: CoreId) -> Result<SocketId, SimError> {
        if core.0 >= self.num_cores() {
            return Err(SimError::UnknownCore { core: core.0 });
        }
        Ok(SocketId(core.0 / self.config.cores_per_socket))
    }

    /// The NUMA node local to a core (nodes map 1:1 to sockets).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCore`] for out-of-range cores.
    pub fn numa_node_of(&self, core: CoreId) -> Result<NumaNode, SimError> {
        Ok(NumaNode(self.socket_of(core)?.0))
    }

    /// Immutable view of a socket.
    pub fn socket(&self, socket: SocketId) -> Option<&Socket> {
        self.sockets.get(socket.0)
    }

    /// LLC statistics of a socket.
    pub fn llc_stats(&self, socket: SocketId) -> Option<CacheStats> {
        self.sockets.get(socket.0).map(|s| s.llc.stats())
    }

    /// Number of LLC lines currently owned by `owner` on `socket`.
    pub fn llc_occupancy_of(&self, socket: SocketId, owner: OwnerId) -> u64 {
        self.sockets
            .get(socket.0)
            .map(|s| s.llc.occupancy_of(owner))
            .unwrap_or(0)
    }

    /// Resolves the access route of a slot — socket index, core index
    /// within the socket, and whether LLC misses pay the remote latency —
    /// so the engine's per-op loop can skip the core-to-socket division and
    /// NUMA comparison (see [`Machine::access_routed`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCore`] for out-of-range cores.
    pub fn route(
        &self,
        core: CoreId,
        data_node: NumaNode,
        force_remote: bool,
    ) -> Result<AccessRoute, SimError> {
        let socket = self.socket_of(core)?;
        Ok(AccessRoute {
            socket: socket.0,
            core_idx: core.0 % self.config.cores_per_socket,
            remote_on_miss: force_remote || data_node.0 != socket.0,
        })
    }

    /// Performs a memory access along a pre-resolved route. Semantically
    /// identical to [`Machine::access`] with the route's core and placement,
    /// minus the per-access resolution work.
    #[inline]
    pub fn access_routed(
        &mut self,
        route: AccessRoute,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> AccessOutcome {
        self.sockets[route.socket].walk_routed(route, addr, kind, owner, &self.config.latency)
    }

    /// Performs a memory access from `core`.
    ///
    /// `data_node` is the NUMA node holding the data: if it differs from the
    /// core's node (or `force_remote` is set, modelling a vCPU migrated away
    /// from its memory by the socket-dedication monitor), LLC misses pay the
    /// remote-memory latency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCore`] for out-of-range cores.
    pub fn access(
        &mut self,
        core: CoreId,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
        data_node: NumaNode,
        force_remote: bool,
    ) -> Result<AccessOutcome, SimError> {
        let route = self.route(core, data_node, force_remote)?;
        Ok(self.access_routed(route, addr, kind, owner))
    }

    /// Pre-sizes per-owner counters of every cache on the machine for
    /// `owner`, keeping table growth off the access hot path (called when a
    /// VM is created; see [`Cache::register_owner`]).
    pub fn register_owner(&mut self, owner: OwnerId) {
        for socket in &mut self.sockets {
            socket.llc.register_owner(owner);
            for core in &mut socket.cores {
                core.register_owner(owner);
            }
        }
    }

    /// Flushes every cache line owned by `owner` on the whole machine
    /// (called when a VM is destroyed or extracted for migration). Returns
    /// the total number of lines invalidated across every cache level — the
    /// warm state the owner would have to rebuild.
    pub fn flush_owner(&mut self, owner: OwnerId) -> u64 {
        let mut flushed = 0u64;
        for socket in &mut self.sockets {
            flushed += socket.llc.flush_owner(owner);
            for core in &mut socket.cores {
                flushed += core.flush_owner(owner);
            }
        }
        flushed
    }

    /// Resets the statistics of every cache.
    pub fn reset_stats(&mut self) {
        for socket in &mut self.sockets {
            socket.llc.reset_stats();
            for core in &mut socket.cores {
                core.reset_stats();
            }
        }
    }

    /// Private-cache view for a core (useful in tests and diagnostics).
    pub fn core_caches(&self, core: CoreId) -> Option<&CoreCaches> {
        let socket = self.socket_of(core).ok()?;
        let idx = core.0 % self.config.cores_per_socket;
        self.sockets.get(socket.0).map(|s| &s.cores[idx])
    }

    /// Splits the machine into independently mutable per-socket views, one
    /// per socket, in socket-id order.
    ///
    /// Sockets share no cache state — each owns its LLC and the private
    /// caches of its cores — so the views can be handed to different threads
    /// and driven concurrently (the engine's socket-parallel path does
    /// exactly that). Each [`SocketView`] carries a copy of the latency
    /// table so it can serve [`SocketView::access_routed`] without touching
    /// the shared machine.
    pub fn sockets_mut(&mut self) -> impl Iterator<Item = SocketView<'_>> {
        let latency = self.config.latency;
        self.sockets
            .iter_mut()
            .map(move |socket| SocketView { socket, latency })
    }
}

/// An exclusively borrowed view of one socket: the split-borrow handle
/// produced by [`Machine::sockets_mut`].
///
/// A view can perform routed memory accesses against its own socket only;
/// routes resolved for another socket are a programming error (checked by a
/// debug assertion).
#[derive(Debug)]
pub struct SocketView<'a> {
    socket: &'a mut Socket,
    latency: LatencyConfig,
}

impl SocketView<'_> {
    /// The id of the viewed socket.
    pub fn id(&self) -> SocketId {
        self.socket.id
    }

    /// Performs a memory access along a pre-resolved route, exactly like
    /// [`Machine::access_routed`] restricted to this socket (both delegate
    /// to the same private `Socket::walk_routed` body, so the serial and parallel
    /// engine paths cannot drift apart).
    ///
    /// Routes resolved for another socket are a programming error (checked
    /// by a debug assertion).
    #[inline]
    pub fn access_routed(
        &mut self,
        route: AccessRoute,
        addr: u64,
        kind: AccessKind,
        owner: OwnerId,
    ) -> AccessOutcome {
        self.socket
            .walk_routed(route, addr, kind, owner, &self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_table_1() {
        let config = MachineConfig::paper_machine();
        assert_eq!(config.sockets, 1);
        assert_eq!(config.cores_per_socket, 4);
        assert_eq!(config.freq_khz, 2_800_000);
        assert_eq!(config.l1d.size_bytes, 32 * 1024);
        assert_eq!(config.l1d.ways, 8);
        assert_eq!(config.l2.size_bytes, 256 * 1024);
        assert_eq!(config.l2.ways, 8);
        assert_eq!(config.llc.size_bytes, 10 * 1024 * 1024);
        assert_eq!(config.llc.ways, 20);
        assert_eq!(config.latency, LatencyConfig::default());
        config.validate().unwrap();
    }

    #[test]
    fn numa_machine_has_two_sockets() {
        let machine = Machine::new(MachineConfig::scaled_paper_numa_machine(32));
        assert_eq!(machine.num_sockets(), 2);
        assert_eq!(machine.num_cores(), 8);
        assert_eq!(machine.socket_of(CoreId(0)).unwrap(), SocketId(0));
        assert_eq!(machine.socket_of(CoreId(4)).unwrap(), SocketId(1));
        assert_eq!(machine.numa_node_of(CoreId(7)).unwrap(), NumaNode(1));
    }

    #[test]
    fn unknown_core_is_an_error() {
        let machine = Machine::new(MachineConfig::scaled_paper_machine(32));
        assert!(machine.socket_of(CoreId(99)).is_err());
    }

    #[test]
    fn scaled_machine_preserves_topology_and_shrinks_caches() {
        let full = MachineConfig::paper_machine();
        let scaled = MachineConfig::scaled_paper_machine(16);
        assert_eq!(scaled.num_cores(), full.num_cores());
        assert_eq!(scaled.llc.size_bytes, full.llc.size_bytes / 16);
        assert_eq!(scaled.llc.ways, full.llc.ways);
        assert_eq!(scaled.freq_khz, full.freq_khz / 16);
        scaled.validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = MachineConfig::paper_machine();
        config.sockets = 0;
        assert!(config.validate().is_err());
        let mut config = MachineConfig::paper_machine();
        config.freq_khz = 0;
        assert!(config.validate().is_err());
        let mut config = MachineConfig::paper_machine();
        config.llc.ways = 0;
        assert!(Machine::try_new(config).is_err());
    }

    #[test]
    fn local_and_remote_access_latencies() {
        let mut machine = Machine::new(MachineConfig::scaled_paper_numa_machine(32));
        let out = machine
            .access(CoreId(0), 0x10_000, AccessKind::Load, 1, NumaNode(0), false)
            .unwrap();
        assert_eq!(out.level, MemLevel::LocalMemory);
        assert_eq!(out.latency, 180);
        let out = machine
            .access(CoreId(0), 0x20_000, AccessKind::Load, 1, NumaNode(1), false)
            .unwrap();
        assert_eq!(out.level, MemLevel::RemoteMemory);
        assert_eq!(out.latency, 300);
    }

    #[test]
    fn force_remote_overrides_local_placement() {
        let mut machine = Machine::new(MachineConfig::scaled_paper_numa_machine(32));
        let out = machine
            .access(CoreId(0), 0x30_000, AccessKind::Load, 1, NumaNode(0), true)
            .unwrap();
        assert_eq!(out.level, MemLevel::RemoteMemory);
    }

    #[test]
    fn cache_hits_are_never_remote() {
        let mut machine = Machine::new(MachineConfig::scaled_paper_numa_machine(32));
        machine
            .access(CoreId(0), 0x40_000, AccessKind::Load, 1, NumaNode(1), false)
            .unwrap();
        let out = machine
            .access(CoreId(0), 0x40_000, AccessKind::Load, 1, NumaNode(1), false)
            .unwrap();
        assert_eq!(out.level, MemLevel::L1);
        assert_eq!(out.latency, 4);
    }

    #[test]
    fn cores_on_same_socket_share_the_llc() {
        let mut machine = Machine::new(MachineConfig::scaled_paper_machine(32));
        machine
            .access(CoreId(0), 0x50_000, AccessKind::Load, 1, NumaNode(0), false)
            .unwrap();
        // Core 1 misses its private caches but hits the LLC warmed by core 0.
        let out = machine
            .access(CoreId(1), 0x50_000, AccessKind::Load, 1, NumaNode(0), false)
            .unwrap();
        assert_eq!(out.level, MemLevel::Llc);
    }

    #[test]
    fn cores_on_different_sockets_do_not_share_the_llc() {
        let mut machine = Machine::new(MachineConfig::scaled_paper_numa_machine(32));
        machine
            .access(CoreId(0), 0x60_000, AccessKind::Load, 1, NumaNode(0), false)
            .unwrap();
        let out = machine
            .access(CoreId(4), 0x60_000, AccessKind::Load, 1, NumaNode(0), false)
            .unwrap();
        assert!(out.level.is_llc_miss());
    }

    #[test]
    fn flush_owner_empties_llc_occupancy() {
        let mut machine = Machine::new(MachineConfig::scaled_paper_machine(32));
        for i in 0..64u64 {
            machine
                .access(CoreId(0), i * 64, AccessKind::Load, 3, NumaNode(0), false)
                .unwrap();
        }
        assert!(machine.llc_occupancy_of(SocketId(0), 3) > 0);
        machine.flush_owner(3);
        assert_eq!(machine.llc_occupancy_of(SocketId(0), 3), 0);
    }

    #[test]
    fn socket_views_access_their_own_socket_like_the_machine() {
        let config = MachineConfig::scaled_paper_numa_machine(32);
        let mut direct = Machine::new(config.clone());
        let mut split = Machine::new(config);
        // Same access stream through `access_routed` on the machine and
        // through the per-socket views: identical outcomes and LLC stats.
        let accesses: Vec<(CoreId, u64)> = (0..64u64)
            .map(|i| (CoreId((i % 8) as usize), i * 256))
            .collect();
        let mut direct_outcomes = Vec::new();
        for &(core, addr) in &accesses {
            let route = direct.route(core, NumaNode(0), false).unwrap();
            direct_outcomes.push(direct.access_routed(route, addr, AccessKind::Load, 1));
        }
        let routes: Vec<AccessRoute> = accesses
            .iter()
            .map(|&(core, _)| split.route(core, NumaNode(0), false).unwrap())
            .collect();
        let mut split_outcomes = vec![None; accesses.len()];
        let mut views: Vec<SocketView<'_>> = split.sockets_mut().collect();
        for (i, (&(_, addr), route)) in accesses.iter().zip(&routes).enumerate() {
            split_outcomes[i] =
                Some(views[route.socket_index()].access_routed(*route, addr, AccessKind::Load, 1));
        }
        assert_eq!(views[0].id(), SocketId(0));
        assert_eq!(views[1].id(), SocketId(1));
        drop(views);
        let split_outcomes: Vec<AccessOutcome> =
            split_outcomes.into_iter().map(Option::unwrap).collect();
        assert_eq!(direct_outcomes, split_outcomes);
        assert_eq!(
            direct.llc_stats(SocketId(0)).unwrap(),
            split.llc_stats(SocketId(0)).unwrap()
        );
        assert_eq!(
            direct.llc_stats(SocketId(1)).unwrap(),
            split.llc_stats(SocketId(1)).unwrap()
        );
    }

    #[test]
    fn cloud_machine_replicates_the_paper_socket() {
        for sockets in [1usize, 2, 4, 8, 16] {
            let config = MachineConfig::scaled_cloud_machine(sockets, 64);
            assert_eq!(config.sockets, sockets);
            assert_eq!(config.cores_per_socket, 4);
            assert_eq!(config.num_cores(), sockets * 4);
            assert_eq!(
                config.llc.size_bytes,
                MachineConfig::scaled_paper_machine(64).llc.size_bytes
            );
            config.validate().unwrap();
            let machine = Machine::new(config);
            assert_eq!(machine.num_sockets(), sockets);
        }
        // with_sockets/with_cores_per_socket clamp to at least one.
        let config = MachineConfig::paper_machine()
            .with_sockets(0)
            .with_cores_per_socket(0);
        assert_eq!(config.sockets, 1);
        assert_eq!(config.cores_per_socket, 1);
    }

    #[test]
    fn core_and_socket_coordinates_round_trip() {
        let config = MachineConfig::cloud_machine(4);
        for s in 0..4 {
            for c in 0..config.cores_per_socket {
                let core = config.core_on(SocketId(s), c).unwrap();
                assert_eq!(config.socket_of_core(core), Some(SocketId(s)));
            }
        }
        assert_eq!(config.core_on(SocketId(4), 0), None);
        assert_eq!(config.core_on(SocketId(0), config.cores_per_socket), None);
        assert_eq!(config.socket_of_core(CoreId(config.num_cores())), None);
    }

    #[test]
    fn cores_of_socket_partition_all_cores() {
        let machine = Machine::new(MachineConfig::scaled_paper_numa_machine(32));
        let s0 = machine.cores_of_socket(SocketId(0));
        let s1 = machine.cores_of_socket(SocketId(1));
        assert_eq!(s0.len() + s1.len(), machine.num_cores());
        assert!(s0.iter().all(|c| !s1.contains(c)));
    }
}
