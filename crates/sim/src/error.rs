//! Error types for the simulation substrate.

use std::error::Error;
use std::fmt;

/// Error raised while validating or driving the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A cache configuration is geometrically impossible (size not divisible
    /// by `ways * line_size`, zero ways, non power-of-two set count, ...).
    InvalidCacheConfig {
        /// Human-readable description of the geometry problem.
        reason: String,
    },
    /// A machine configuration is inconsistent (no cores, zero frequency, ...).
    InvalidMachineConfig {
        /// Human-readable description of the topology problem.
        reason: String,
    },
    /// A core id referenced a core that does not exist on the machine.
    UnknownCore {
        /// The offending core index.
        core: usize,
    },
    /// A NUMA node referenced a socket that does not exist on the machine.
    UnknownNumaNode {
        /// The offending node index.
        node: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidCacheConfig { reason } => {
                write!(f, "invalid cache configuration: {reason}")
            }
            SimError::InvalidMachineConfig { reason } => {
                write!(f, "invalid machine configuration: {reason}")
            }
            SimError::UnknownCore { core } => write!(f, "unknown core id {core}"),
            SimError::UnknownNumaNode { node } => write!(f, "unknown NUMA node {node}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SimError::InvalidCacheConfig {
            reason: "zero ways".to_string(),
        };
        let msg = err.to_string();
        assert!(msg.contains("invalid cache configuration"));
        assert!(msg.contains("zero ways"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn unknown_core_display() {
        assert_eq!(
            SimError::UnknownCore { core: 7 }.to_string(),
            "unknown core id 7"
        );
    }
}
