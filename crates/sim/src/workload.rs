//! The workload abstraction consumed by the simulation engine.
//!
//! A workload is a deterministic generator of micro-operations: pure compute
//! bursts and memory accesses. Concrete models (the Drepper pointer-chase
//! micro-benchmark, SPEC CPU2006-like profiles, blockie) live in the
//! `kyoto-workloads` crate; this module only defines the contract plus a few
//! trivial implementations that are useful for tests.

use crate::hierarchy::AccessKind;
use serde::{Deserialize, Serialize};

/// A single micro-operation produced by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Pure computation consuming `cycles` core cycles (no memory traffic).
    Compute {
        /// Number of cycles of computation.
        cycles: u32,
    },
    /// A data load from `addr` (byte address in the workload's own
    /// address space).
    Load {
        /// Byte address accessed.
        addr: u64,
    },
    /// A data store to `addr`.
    Store {
        /// Byte address accessed.
        addr: u64,
    },
}

impl Op {
    /// The access kind of a memory op, or `None` for compute ops.
    pub fn access_kind(&self) -> Option<AccessKind> {
        match self {
            Op::Compute { .. } => None,
            Op::Load { .. } => Some(AccessKind::Load),
            Op::Store { .. } => Some(AccessKind::Store),
        }
    }

    /// The address of a memory op, or `None` for compute ops.
    pub fn addr(&self) -> Option<u64> {
        match self {
            Op::Compute { .. } => None,
            Op::Load { addr } | Op::Store { addr } => Some(*addr),
        }
    }
}

/// A deterministic generator of micro-operations.
///
/// Implementations must be deterministic for a given construction seed so
/// that experiments are reproducible.
///
/// `Send` is a supertrait because the engine's socket-parallel path
/// ([`crate::engine::SimEngine::run_slots_parallel`]) drives each socket's
/// slots — and therefore their workloads — from a scoped worker thread. All
/// built-in workloads are plain owned data, so the bound is free.
pub trait Workload: Send {
    /// Produces the next micro-operation.
    fn next_op(&mut self) -> Op;

    /// Fills `buf` with the next operations of the stream and returns how
    /// many were written (the default implementation fills the whole
    /// buffer via [`Workload::next_op`]).
    ///
    /// The engine batches through this method so one dynamic dispatch
    /// fetches a whole chunk of ops. Implementations must emit exactly the
    /// stream repeated `next_op` calls would: a `fill_ops` followed by
    /// `next_op` continues the same sequence. Infinite generators (all the
    /// built-in models) must fill the buffer completely; a return value
    /// below `buf.len()` is reserved for finite traces.
    fn fill_ops(&mut self, buf: &mut [Op]) -> usize {
        for slot in buf.iter_mut() {
            *slot = self.next_op();
        }
        buf.len()
    }

    /// Short human-readable name (e.g. the SPEC application being modelled).
    fn name(&self) -> &str;

    /// Size of the data the workload actively touches, in bytes.
    fn working_set_bytes(&self) -> u64;

    /// Memory-level parallelism: how many independent outstanding misses the
    /// workload sustains on average.
    ///
    /// Dependent-load workloads (the Drepper pointer chase, mcf-like pointer
    /// chasing) cannot overlap misses and should return `1.0` (the default).
    /// Streaming workloads (lbm, blockie, milc) overlap many misses, which is
    /// what makes them effective polluters: the engine divides the LLC-miss
    /// latency by this factor.
    fn mem_parallelism(&self) -> f64 {
        1.0
    }

    /// Resets internal progress (e.g. restart the pointer chase). The default
    /// implementation does nothing, which is acceptable for stateless models.
    fn reset(&mut self) {}

    /// Whether the workload wants to block (WFI-style) instead of emitting
    /// more ops.
    ///
    /// The hypervisor polls this after every scheduled tick; a `true` parks
    /// the vCPU in the Blocked state until a wake event arrives, at which
    /// point [`Workload::on_wake`] is called. Note that the engine
    /// *prefetches* ops in chunks, so by the time a tick finishes the
    /// workload may have emitted ops that are still queued — implementations
    /// should report the intent to block based on their own emission
    /// progress, and the default of `false` keeps every existing workload
    /// always runnable.
    fn wants_block(&self) -> bool {
        false
    }

    /// Delivers a wake event (interrupt or timer) to a blocked workload.
    ///
    /// Implementations typically refill a request burst here; the default
    /// does nothing, matching the always-runnable default of
    /// [`Workload::wants_block`].
    fn on_wake(&mut self) {}

    /// Deep-copies the workload *including its execution progress*, so the
    /// copy continues the exact op stream the original would have produced.
    ///
    /// This is the primitive behind fleet checkpointing: a hypervisor can
    /// only be snapshotted if every resident workload is cloneable. All
    /// built-in models support it; the default of `None` opts a workload out
    /// of checkpointing without breaking anything else.
    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        None
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_op(&mut self) -> Op {
        (**self).next_op()
    }

    fn fill_ops(&mut self, buf: &mut [Op]) -> usize {
        (**self).fill_ops(buf)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn working_set_bytes(&self) -> u64 {
        (**self).working_set_bytes()
    }

    fn mem_parallelism(&self) -> f64 {
        (**self).mem_parallelism()
    }

    fn wants_block(&self) -> bool {
        (**self).wants_block()
    }

    fn on_wake(&mut self) {
        (**self).on_wake()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        (**self).try_clone_box()
    }
}

/// A purely compute-bound workload: never touches memory.
///
/// Useful to model an idle/CPU-bound vCPU and as a baseline in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeOnly {
    cycles_per_op: u32,
}

impl ComputeOnly {
    /// Creates a compute-only workload whose every op burns `cycles_per_op`.
    pub fn new(cycles_per_op: u32) -> Self {
        ComputeOnly {
            cycles_per_op: cycles_per_op.max(1),
        }
    }
}

impl Default for ComputeOnly {
    fn default() -> Self {
        ComputeOnly::new(1)
    }
}

impl Workload for ComputeOnly {
    fn next_op(&mut self) -> Op {
        Op::Compute {
            cycles: self.cycles_per_op,
        }
    }

    fn fill_ops(&mut self, buf: &mut [Op]) -> usize {
        buf.fill(Op::Compute {
            cycles: self.cycles_per_op,
        });
        buf.len()
    }

    fn name(&self) -> &str {
        "compute-only"
    }

    fn working_set_bytes(&self) -> u64 {
        0
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(*self))
    }
}

/// Replays a fixed operation sequence in a loop. Only useful in tests.
#[derive(Debug, Clone)]
pub struct FixedSequence {
    ops: Vec<Op>,
    next: usize,
    name: String,
    mem_parallelism: f64,
}

impl FixedSequence {
    /// Creates a looping replay of `ops`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        assert!(!ops.is_empty(), "a fixed sequence needs at least one op");
        FixedSequence {
            ops,
            next: 0,
            name: name.into(),
            mem_parallelism: 1.0,
        }
    }

    /// Declares the memory-level parallelism of the replayed stream
    /// (see [`Workload::mem_parallelism`]).
    pub fn with_mem_parallelism(mut self, mlp: f64) -> Self {
        self.mem_parallelism = mlp.max(1.0);
        self
    }
}

impl Workload for FixedSequence {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.next];
        self.next = (self.next + 1) % self.ops.len();
        op
    }

    fn fill_ops(&mut self, buf: &mut [Op]) -> usize {
        // Copy whole slices of the looped sequence instead of stepping the
        // cursor once per op.
        let mut written = 0;
        while written < buf.len() {
            let run = (self.ops.len() - self.next).min(buf.len() - written);
            buf[written..written + run].copy_from_slice(&self.ops[self.next..self.next + run]);
            written += run;
            self.next = (self.next + run) % self.ops.len();
        }
        buf.len()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn working_set_bytes(&self) -> u64 {
        let lines: std::collections::HashSet<u64> = self
            .ops
            .iter()
            .filter_map(|op| op.addr().map(|a| a / 64))
            .collect();
        lines.len() as u64 * 64
    }

    fn mem_parallelism(&self) -> f64 {
        self.mem_parallelism
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Compute { cycles: 3 }.access_kind(), None);
        assert_eq!(Op::Load { addr: 64 }.access_kind(), Some(AccessKind::Load));
        assert_eq!(
            Op::Store { addr: 64 }.access_kind(),
            Some(AccessKind::Store)
        );
        assert_eq!(Op::Load { addr: 64 }.addr(), Some(64));
        assert_eq!(Op::Compute { cycles: 3 }.addr(), None);
    }

    #[test]
    fn compute_only_never_accesses_memory() {
        let mut wl = ComputeOnly::new(5);
        for _ in 0..100 {
            assert!(matches!(wl.next_op(), Op::Compute { cycles: 5 }));
        }
        assert_eq!(wl.working_set_bytes(), 0);
    }

    #[test]
    fn compute_only_clamps_zero_cycles() {
        let mut wl = ComputeOnly::new(0);
        assert!(matches!(wl.next_op(), Op::Compute { cycles: 1 }));
    }

    #[test]
    fn fixed_sequence_loops_and_resets() {
        let mut wl = FixedSequence::new(
            "seq",
            vec![
                Op::Load { addr: 0 },
                Op::Load { addr: 64 },
                Op::Compute { cycles: 1 },
            ],
        );
        assert_eq!(wl.next_op(), Op::Load { addr: 0 });
        assert_eq!(wl.next_op(), Op::Load { addr: 64 });
        assert_eq!(wl.next_op(), Op::Compute { cycles: 1 });
        assert_eq!(wl.next_op(), Op::Load { addr: 0 });
        wl.reset();
        assert_eq!(wl.next_op(), Op::Load { addr: 0 });
    }

    #[test]
    fn fixed_sequence_working_set_counts_distinct_lines() {
        let wl = FixedSequence::new(
            "seq",
            vec![
                Op::Load { addr: 0 },
                Op::Load { addr: 8 },
                Op::Store { addr: 64 },
            ],
        );
        assert_eq!(wl.working_set_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_fixed_sequence_panics() {
        let _ = FixedSequence::new("empty", vec![]);
    }

    #[test]
    fn boxed_workload_delegates() {
        let mut wl: Box<dyn Workload> = Box::new(ComputeOnly::new(2));
        assert_eq!(wl.name(), "compute-only");
        assert!(matches!(wl.next_op(), Op::Compute { cycles: 2 }));
    }

    #[test]
    fn try_clone_preserves_execution_progress() {
        let mut wl = FixedSequence::new(
            "seq",
            vec![
                Op::Load { addr: 0 },
                Op::Load { addr: 64 },
                Op::Compute { cycles: 1 },
            ],
        );
        let _ = wl.next_op();
        let mut copy = wl.try_clone_box().expect("fixed sequences are cloneable");
        for _ in 0..7 {
            assert_eq!(copy.next_op(), wl.next_op());
        }
        // The Box forwarder delegates rather than wrapping another box.
        let boxed: Box<dyn Workload> = Box::new(ComputeOnly::new(3));
        let mut dup = boxed.try_clone_box().expect("compute-only is cloneable");
        assert!(matches!(dup.next_op(), Op::Compute { cycles: 3 }));
    }

    struct Opaque;
    impl Workload for Opaque {
        fn next_op(&mut self) -> Op {
            Op::Compute { cycles: 1 }
        }
        fn name(&self) -> &str {
            "opaque"
        }
        fn working_set_bytes(&self) -> u64 {
            0
        }
    }

    #[test]
    fn workloads_opt_out_of_cloning_by_default() {
        assert!(Opaque.try_clone_box().is_none());
    }

    #[test]
    fn workloads_never_block_by_default_and_boxes_forward() {
        let mut opaque = Opaque;
        assert!(!opaque.wants_block());
        opaque.on_wake(); // default is a no-op
        assert!(!opaque.wants_block());

        struct Sleepy {
            asleep: bool,
        }
        impl Workload for Sleepy {
            fn next_op(&mut self) -> Op {
                Op::Compute { cycles: 1 }
            }
            fn name(&self) -> &str {
                "sleepy"
            }
            fn working_set_bytes(&self) -> u64 {
                0
            }
            fn wants_block(&self) -> bool {
                self.asleep
            }
            fn on_wake(&mut self) {
                self.asleep = false;
            }
        }
        let mut boxed: Box<dyn Workload> = Box::new(Sleepy { asleep: true });
        assert!(boxed.wants_block(), "the Box forwarder must delegate");
        boxed.on_wake();
        assert!(!boxed.wants_block(), "on_wake must reach the inner model");
    }
}
