//! Virtualised performance monitoring counters (PMCs).
//!
//! The paper gathers `LLC Misses` and `UnHalted Core Cycles` through a
//! modified `perfctr-xen` that saves/restores counters on vCPU context
//! switches so each VM's counters reflect only its own execution. This module
//! plays that role for the simulated machine: [`PmcSet`] is the counter
//! snapshot and [`VirtualPmu`] attributes counter deltas to contexts
//! (vCPUs) across context switches.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::{Add, AddAssign, Sub};

/// A snapshot of the performance counters the Kyoto monitor relies on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PmcSet {
    /// Retired instructions.
    pub instructions: u64,
    /// Unhalted core cycles (the denominator of Equation 1).
    pub unhalted_core_cycles: u64,
    /// Memory operations issued (loads + stores).
    pub memory_accesses: u64,
    /// Accesses that missed at least one intermediate-level cache (L1 + L2),
    /// i.e. were resolved at or beyond the L2. Always >= `llc_references`,
    /// which additionally requires missing the L2.
    pub ilc_misses: u64,
    /// Accesses that reached the LLC (i.e. missed every private cache).
    pub llc_references: u64,
    /// LLC misses (the numerator of Equation 1).
    pub llc_misses: u64,
    /// LLC misses that were served from a remote NUMA node.
    pub remote_accesses: u64,
}

impl PmcSet {
    /// An all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Instructions per cycle; `0` when no cycle has elapsed.
    pub fn ipc(&self) -> f64 {
        if self.unhalted_core_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.unhalted_core_cycles as f64
        }
    }

    /// LLC miss ratio relative to LLC references; `0` when the LLC was never
    /// referenced.
    pub fn llc_miss_ratio(&self) -> f64 {
        if self.llc_references == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_references as f64
        }
    }

    /// LLC misses per million instructions (MPKI × 1000); `0` without
    /// instructions.
    pub fn llc_mpmi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1_000_000.0 / self.instructions as f64
        }
    }

    /// Saturating element-wise difference `self - earlier`.
    ///
    /// Counters are monotonic, so a well-formed call always has
    /// `self >= earlier`; saturation protects against misuse.
    pub fn delta_since(&self, earlier: &PmcSet) -> PmcSet {
        PmcSet {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            unhalted_core_cycles: self
                .unhalted_core_cycles
                .saturating_sub(earlier.unhalted_core_cycles),
            memory_accesses: self.memory_accesses.saturating_sub(earlier.memory_accesses),
            ilc_misses: self.ilc_misses.saturating_sub(earlier.ilc_misses),
            llc_references: self.llc_references.saturating_sub(earlier.llc_references),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
            remote_accesses: self.remote_accesses.saturating_sub(earlier.remote_accesses),
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == PmcSet::default()
    }
}

impl Add for PmcSet {
    type Output = PmcSet;

    fn add(self, rhs: PmcSet) -> PmcSet {
        PmcSet {
            instructions: self.instructions + rhs.instructions,
            unhalted_core_cycles: self.unhalted_core_cycles + rhs.unhalted_core_cycles,
            memory_accesses: self.memory_accesses + rhs.memory_accesses,
            ilc_misses: self.ilc_misses + rhs.ilc_misses,
            llc_references: self.llc_references + rhs.llc_references,
            llc_misses: self.llc_misses + rhs.llc_misses,
            remote_accesses: self.remote_accesses + rhs.remote_accesses,
        }
    }
}

impl AddAssign for PmcSet {
    fn add_assign(&mut self, rhs: PmcSet) {
        *self = *self + rhs;
    }
}

impl Sub for PmcSet {
    type Output = PmcSet;

    fn sub(self, rhs: PmcSet) -> PmcSet {
        self.delta_since(&rhs)
    }
}

/// Identifier of a PMC context (one per vCPU in the hypervisor).
pub type PmcContextId = u64;

/// Per-context virtualised PMU, the `perfctr-xen` stand-in.
///
/// Each context accumulates only the counter deltas recorded while it was
/// the active context of its core, exactly like counters saved and restored
/// on vCPU context switches.
#[derive(Debug, Clone, Default)]
pub struct VirtualPmu {
    contexts: HashMap<PmcContextId, PmcSet>,
    active: HashMap<usize, PmcContextId>,
}

impl VirtualPmu {
    /// Creates an empty PMU with no contexts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `ctx` (idempotent).
    pub fn register(&mut self, ctx: PmcContextId) {
        self.contexts.entry(ctx).or_default();
    }

    /// Removes a context and returns its final counters.
    pub fn unregister(&mut self, ctx: PmcContextId) -> Option<PmcSet> {
        self.contexts.remove(&ctx)
    }

    /// Marks `ctx` as the active context on `core` (a context switch).
    /// Returns the previously active context, if any.
    pub fn context_switch(&mut self, core: usize, ctx: PmcContextId) -> Option<PmcContextId> {
        self.register(ctx);
        self.active.insert(core, ctx)
    }

    /// Marks `core` as idle (no active context).
    pub fn park(&mut self, core: usize) -> Option<PmcContextId> {
        self.active.remove(&core)
    }

    /// The context currently active on `core`.
    pub fn active_on(&self, core: usize) -> Option<PmcContextId> {
        self.active.get(&core).copied()
    }

    /// Records a counter delta measured on `core`, attributing it to the
    /// active context. Deltas recorded on an idle core are dropped (they
    /// belong to the hypervisor itself).
    pub fn record(&mut self, core: usize, delta: PmcSet) {
        if let Some(ctx) = self.active.get(&core) {
            *self.contexts.entry(*ctx).or_default() += delta;
        }
    }

    /// Records a counter delta directly against a context, bypassing the
    /// active-context indirection (used when the caller already knows the
    /// attribution, e.g. the simulation engine's per-slot reports).
    pub fn record_for(&mut self, ctx: PmcContextId, delta: PmcSet) {
        *self.contexts.entry(ctx).or_default() += delta;
    }

    /// Cumulative counters of a context.
    pub fn read(&self, ctx: PmcContextId) -> PmcSet {
        self.contexts.get(&ctx).copied().unwrap_or_default()
    }

    /// Number of registered contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// Whether no context is registered.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(instructions: u64, cycles: u64, misses: u64) -> PmcSet {
        PmcSet {
            instructions,
            unhalted_core_cycles: cycles,
            llc_misses: misses,
            llc_references: misses * 2,
            ..PmcSet::default()
        }
    }

    #[test]
    fn ipc_and_miss_ratio() {
        let pmc = sample(1000, 2000, 10);
        assert!((pmc.ipc() - 0.5).abs() < 1e-12);
        assert!((pmc.llc_miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(PmcSet::default().ipc(), 0.0);
        assert_eq!(PmcSet::default().llc_miss_ratio(), 0.0);
    }

    #[test]
    fn delta_since_is_elementwise() {
        let a = sample(1000, 2000, 10);
        let b = sample(1500, 2600, 25);
        let d = b.delta_since(&a);
        assert_eq!(d.instructions, 500);
        assert_eq!(d.unhalted_core_cycles, 600);
        assert_eq!(d.llc_misses, 15);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let a = sample(10, 10, 10);
        let b = sample(5, 5, 5);
        let d = b.delta_since(&a);
        assert!(d.is_zero() || d.llc_references == 0);
        assert_eq!(d.instructions, 0);
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = sample(100, 300, 7);
        let b = sample(50, 60, 3);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn pmu_attributes_deltas_to_active_context() {
        let mut pmu = VirtualPmu::new();
        pmu.context_switch(0, 11);
        pmu.record(0, sample(100, 200, 5));
        pmu.context_switch(0, 22);
        pmu.record(0, sample(10, 20, 1));
        assert_eq!(pmu.read(11).instructions, 100);
        assert_eq!(pmu.read(22).instructions, 10);
        assert_eq!(pmu.read(33), PmcSet::default());
    }

    #[test]
    fn pmu_drops_deltas_on_idle_cores() {
        let mut pmu = VirtualPmu::new();
        pmu.context_switch(0, 11);
        pmu.park(0);
        pmu.record(0, sample(100, 200, 5));
        assert!(pmu.read(11).is_zero());
    }

    #[test]
    fn context_switch_returns_previous_context() {
        let mut pmu = VirtualPmu::new();
        assert_eq!(pmu.context_switch(3, 1), None);
        assert_eq!(pmu.context_switch(3, 2), Some(1));
        assert_eq!(pmu.active_on(3), Some(2));
    }

    #[test]
    fn unregister_returns_final_counters() {
        let mut pmu = VirtualPmu::new();
        pmu.record_for(9, sample(1, 2, 3));
        let last = pmu.unregister(9).unwrap();
        assert_eq!(last.llc_misses, 3);
        assert!(pmu.is_empty());
    }

    #[test]
    fn mpmi_is_per_million_instructions() {
        let pmc = PmcSet {
            instructions: 2_000_000,
            llc_misses: 10,
            ..PmcSet::default()
        };
        assert!((pmc.llc_mpmi() - 5.0).abs() < 1e-12);
    }
}
