//! Property-based tests of the cache and PMC invariants.

use kyoto_sim::cache::{Cache, CacheConfig};
use kyoto_sim::hierarchy::AccessKind;
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::replacement::ReplacementPolicy;
use kyoto_sim::topology::{CoreId, Machine, MachineConfig, NumaNode, SocketId, SocketView};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Bip),
        Just(ReplacementPolicy::Dip),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the access stream, the cache never holds more lines than its
    /// capacity, every owner's occupancy is consistent, and the hit/miss
    /// accounting closes.
    #[test]
    fn cache_accounting_closes(
        policy in arb_policy(),
        accesses in prop::collection::vec((0u64..4096, 1u16..4), 1..500),
    ) {
        let config = CacheConfig::new(8 * 1024, 4, 64).with_policy(policy);
        let mut cache = Cache::new(config.clone()).unwrap();
        for &(line, owner) in &accesses {
            cache.access(line * 64, owner);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses, accesses.len() as u64);
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        prop_assert!(cache.occupancy() <= config.num_lines());
        let per_owner: u64 = (0..4u16).map(|o| cache.occupancy_of(o)).sum();
        prop_assert_eq!(per_owner, cache.occupancy());
        // Evictions can never exceed misses (only misses insert lines).
        prop_assert!(stats.evictions <= stats.misses);
    }

    /// A line that was just accessed is always resident immediately after.
    #[test]
    fn most_recent_access_is_resident(
        policy in arb_policy(),
        accesses in prop::collection::vec((0u64..2048, 1u16..3), 1..300),
    ) {
        let config = CacheConfig::new(4 * 1024, 4, 64).with_policy(policy);
        let mut cache = Cache::new(config).unwrap();
        for &(line, owner) in &accesses {
            cache.access(line * 64, owner);
            prop_assert!(cache.probe(line * 64, owner));
        }
    }

    /// Flushing an owner removes exactly that owner's lines.
    #[test]
    fn flush_owner_is_selective(
        accesses in prop::collection::vec((0u64..1024, 1u16..4), 1..200),
        victim in 1u16..4,
    ) {
        let mut cache = Cache::new(CacheConfig::new(8 * 1024, 8, 64)).unwrap();
        for &(line, owner) in &accesses {
            cache.access(line * 64, owner);
        }
        let others: u64 = (1..4u16).filter(|&o| o != victim).map(|o| cache.occupancy_of(o)).sum();
        cache.flush_owner(victim);
        prop_assert_eq!(cache.occupancy_of(victim), 0);
        let others_after: u64 = (1..4u16).filter(|&o| o != victim).map(|o| cache.occupancy_of(o)).sum();
        prop_assert_eq!(others, others_after);
    }

    /// PMC delta/accumulate round-trips: (a + b) - a == b.
    #[test]
    fn pmc_add_then_delta_roundtrips(
        a in prop::array::uniform7(0u64..1_000_000),
        b in prop::array::uniform7(0u64..1_000_000),
    ) {
        let make = |v: [u64; 7]| PmcSet {
            instructions: v[0],
            unhalted_core_cycles: v[1],
            memory_accesses: v[2],
            ilc_misses: v[3],
            llc_references: v[4],
            llc_misses: v[5],
            remote_accesses: v[6],
        };
        let (a, b) = (make(a), make(b));
        prop_assert_eq!((a + b).delta_since(&a), b);
        prop_assert_eq!((a + b) - b, a);
    }

    /// Machine accesses always report a latency consistent with the level
    /// that served them, and hits never pay memory latency.
    #[test]
    fn machine_latencies_match_levels(
        lines in prop::collection::vec(0u64..100_000, 1..200),
    ) {
        let mut machine = Machine::new(MachineConfig::scaled_paper_numa_machine(64));
        let latency = machine.config().latency;
        for &line in &lines {
            let out = machine
                .access(CoreId(0), line * 64, AccessKind::Load, 1, NumaNode(0), false)
                .unwrap();
            prop_assert_eq!(out.latency, latency.of(out.level));
        }
        // Re-access the last line: it must now hit in a cache level.
        let last = lines[lines.len() - 1] * 64;
        let out = machine
            .access(CoreId(0), last, AccessKind::Load, 1, NumaNode(0), false)
            .unwrap();
        prop_assert!(!out.level.is_llc_miss());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N-socket topology builder round-trips: every (socket, core-index)
    /// coordinate maps to a unique global core and back, `cores_of_socket`
    /// partitions the core set, and the machine builds and validates.
    #[test]
    fn cloud_topology_indices_round_trip(
        sockets in prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
        cores_per_socket in 1usize..9,
    ) {
        let config = MachineConfig::cloud_machine(sockets)
            .with_cores_per_socket(cores_per_socket)
            .scaled(64);
        prop_assert!(config.validate().is_ok());
        let machine = Machine::new(config.clone());
        prop_assert_eq!(machine.num_sockets(), sockets);
        prop_assert_eq!(machine.num_cores(), sockets * cores_per_socket);
        let mut seen = std::collections::HashSet::new();
        for s in 0..sockets {
            for c in 0..cores_per_socket {
                let core = config.core_on(SocketId(s), c).expect("in range");
                prop_assert!(seen.insert(core), "core ids must be unique");
                prop_assert_eq!(config.socket_of_core(core), Some(SocketId(s)));
                prop_assert_eq!(machine.socket_of(core).unwrap(), SocketId(s));
                prop_assert_eq!(machine.numa_node_of(core).unwrap(), NumaNode(s));
                prop_assert!(machine.cores_of_socket(SocketId(s)).contains(&core));
            }
        }
        prop_assert_eq!(seen.len(), machine.num_cores());
        // Out-of-range coordinates are rejected, not wrapped.
        prop_assert_eq!(config.core_on(SocketId(sockets), 0), None);
        prop_assert_eq!(config.core_on(SocketId(0), cores_per_socket), None);
        prop_assert_eq!(config.socket_of_core(CoreId(machine.num_cores())), None);
    }

    /// `sockets_mut` split-borrows are disjoint at any socket count: the
    /// views cover every socket exactly once, and driving disjoint access
    /// streams through all views concurrently-borrowed leaves each socket's
    /// LLC exactly as driving the same streams through the machine.
    #[test]
    fn socket_views_are_disjoint_and_complete(
        sockets in prop_oneof![Just(2usize), Just(4), Just(8)],
        lines in 1u64..64,
    ) {
        let config = MachineConfig::scaled_cloud_machine(sockets, 64);
        let cores_per_socket = config.cores_per_socket;
        let mut via_machine = Machine::new(config.clone());
        let mut via_views = Machine::new(config);
        let accesses: Vec<(CoreId, u64)> = (0..sockets)
            .flat_map(|s| {
                (0..lines)
                    .map(move |i| (CoreId(s * cores_per_socket), ((s as u64) << 32) | (i * 64)))
            })
            .collect();
        for &(core, addr) in &accesses {
            let route = via_machine.route(core, NumaNode(core.0 / cores_per_socket), false).unwrap();
            via_machine.access_routed(route, addr, AccessKind::Load, 1);
        }
        // Routes are pure functions of the machine config and can be
        // resolved before the split borrow.
        let routes: Vec<_> = accesses
            .iter()
            .map(|&(core, _)| {
                via_views
                    .route(core, NumaNode(core.0 / cores_per_socket), false)
                    .unwrap()
            })
            .collect();
        {
            let mut views: Vec<SocketView<'_>> = via_views.sockets_mut().collect();
            prop_assert_eq!(views.len(), sockets);
            for (i, view) in views.iter().enumerate() {
                prop_assert_eq!(view.id(), SocketId(i), "one view per socket, in order");
            }
            for (&(core, addr), route) in accesses.iter().zip(&routes) {
                let socket = core.0 / cores_per_socket;
                views[socket].access_routed(*route, addr, AccessKind::Load, 1);
            }
        }
        for s in 0..sockets {
            prop_assert_eq!(
                via_machine.llc_stats(SocketId(s)).unwrap(),
                via_views.llc_stats(SocketId(s)).unwrap()
            );
        }
    }
}
