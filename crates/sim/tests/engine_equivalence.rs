//! Equivalence of the batched/epoch and socket-parallel engine paths with
//! the per-op reference.
//!
//! `SimEngine::run_slots` batches op fetching and interleaves slots in
//! epochs; `SimEngine::run_slots_parallel` additionally executes each
//! socket's slots on its own thread; `SimEngine::run_slots_reference`
//! advances one op at a time with a linear furthest-behind scan. All three
//! must be *bit-identical*: same `QuantumReport`s, same cumulative slot
//! PMCs, same per-socket LLC `CacheStats` and per-owner occupancy/miss
//! attribution, same shadow (solo) misses, same logical clock — across
//! replacement policies, budgets, slot counts, machines of 1/2/4/8 sockets
//! (placements spreading slots across every socket), and the paper's
//! execution modes (parallel co-scheduling and
//! alternative time-sharing over successive calls, which exercises the
//! carried op buffers).

use kyoto_sim::cache::OwnerId;
use kyoto_sim::engine::{ExecSlot, SimEngine};
use kyoto_sim::pmc::PmcSet;
use kyoto_sim::replacement::ReplacementPolicy;
use kyoto_sim::topology::{CoreId, Machine, MachineConfig, SocketId};
use kyoto_sim::workload::{Op, Workload};
use kyoto_sim::CacheStats;
use proptest::prelude::*;

/// A deterministic mixed load/store/compute generator (LCG-driven) so the
/// test does not depend on the higher-level `kyoto-workloads` crate.
#[derive(Debug, Clone)]
struct LcgWorkload {
    state: u64,
    lines: u64,
    mem_parallelism: f64,
}

impl LcgWorkload {
    fn new(seed: u64, lines: u64, mem_parallelism: f64) -> Self {
        LcgWorkload {
            state: seed | 1,
            lines: lines.max(1),
            mem_parallelism,
        }
    }
}

impl Workload for LcgWorkload {
    fn next_op(&mut self) -> Op {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let draw = self.state >> 33;
        let line = (draw / 16) % self.lines;
        match draw % 16 {
            0..=2 => Op::Compute {
                cycles: (draw / 16 % 13 + 1) as u32,
            },
            3..=5 => Op::Store { addr: line * 64 },
            _ => Op::Load { addr: line * 64 },
        }
    }

    fn name(&self) -> &str {
        "lcg"
    }

    fn working_set_bytes(&self) -> u64 {
        self.lines * 64
    }

    fn mem_parallelism(&self) -> f64 {
        self.mem_parallelism
    }
}

/// One slot blueprint: which core/owner the workload runs on during a call.
#[derive(Debug, Clone, Copy)]
struct SlotSpec {
    core: usize,
    owner: OwnerId,
}

/// Which engine entry point drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnginePath {
    /// `run_slots_reference`: one op at a time, no batching.
    Reference,
    /// `run_slots`: batched op fetching, epoch interleaving, one thread.
    Batched,
    /// `run_slots_parallel`: epoch interleaving per socket, one thread per
    /// populated socket.
    Parallel,
}

/// Which workloads participate in each successive `run_slots` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// All workloads co-run on distinct cores every call (Section 2.2's
    /// parallel execution). On the two-socket machine the cores straddle
    /// both sockets.
    Parallel,
    /// Workloads take turns on core 0 across calls (alternative execution;
    /// exercises op buffers carried across calls).
    Alternative,
    /// One workload alternates on core 0 while another runs steadily on
    /// another core (the other socket, when there is one).
    Combined,
}

/// Everything observable about a run: per-call reports plus final machine,
/// slot and shadow state (per-socket where the machine has several).
#[derive(Debug, PartialEq)]
struct Observed {
    reports: Vec<Vec<kyoto_sim::QuantumReport>>,
    pmcs: Vec<PmcSet>,
    llc_stats: Vec<CacheStats>,
    llc_occupancy: Vec<Vec<u64>>,
    llc_misses_of: Vec<Vec<u64>>,
    shadow_misses: Vec<u64>,
    elapsed_cycles: u64,
}

fn participants(
    mode: Mode,
    call: usize,
    workload_count: usize,
    sockets: usize,
) -> Vec<(usize, SlotSpec)> {
    // On multi-socket machines (4 cores per socket), spread the parallel
    // placements across every socket round-robin: workload `w` runs on
    // socket `w % sockets`. Every workload keeps a fixed core and owner, so
    // no owner ever spans sockets.
    let core_of = |w: usize| (w % sockets) * 4 + w / sockets;
    match mode {
        Mode::Parallel => (0..workload_count)
            .map(|w| {
                (
                    w,
                    SlotSpec {
                        core: core_of(w),
                        owner: w as OwnerId + 1,
                    },
                )
            })
            .collect(),
        Mode::Alternative => {
            let w = call % workload_count;
            vec![(
                w,
                SlotSpec {
                    core: 0,
                    owner: w as OwnerId + 1,
                },
            )]
        }
        Mode::Combined => {
            let w = call % (workload_count - 1).max(1);
            let steady = workload_count - 1;
            vec![
                (
                    w,
                    SlotSpec {
                        core: 0,
                        owner: w as OwnerId + 1,
                    },
                ),
                (
                    steady,
                    SlotSpec {
                        core: if sockets > 1 { 4 } else { 1 },
                        owner: steady as OwnerId + 1,
                    },
                ),
            ]
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_path(
    path: EnginePath,
    policy: ReplacementPolicy,
    mode: Mode,
    seed: u64,
    workload_count: usize,
    budgets: &[u64],
    shadow: bool,
    sockets: usize,
) -> Observed {
    // `cloud_machine(1)` and `cloud_machine(2)` are exactly the paper's
    // single-socket and two-socket machines; larger counts replicate the
    // same per-socket geometry.
    let config = MachineConfig::scaled_cloud_machine(sockets, 256).with_llc_policy(policy);
    let llc_lines = config.llc.num_lines();
    let num_sockets = config.sockets;
    let mut engine = SimEngine::new(Machine::new(config));
    if shadow {
        engine.enable_shadow_attribution().unwrap();
    }
    // Working sets straddle the LLC so hits, misses and cross-owner
    // evictions all occur.
    let mut workloads: Vec<LcgWorkload> = (0..workload_count)
        .map(|w| {
            LcgWorkload::new(
                seed.wrapping_add(w as u64).wrapping_mul(0x9e3779b9) | 1,
                llc_lines / 2 + (w as u64 + 1) * llc_lines / 3,
                1.0 + w as f64 * 2.0,
            )
        })
        .collect();
    let mut pmcs = vec![PmcSet::default(); workload_count];
    let mut reports = Vec::with_capacity(budgets.len());

    for (call, &budget) in budgets.iter().enumerate() {
        let selected = participants(mode, call, workload_count, sockets);
        let mut remaining: Vec<&mut LcgWorkload> = workloads.iter_mut().collect();
        // Pull the selected workloads out in index order so each call can
        // borrow several of them mutably at once.
        let mut slots: Vec<ExecSlot<'_>> = Vec::new();
        let mut slot_workload_indices = Vec::new();
        for &(w, spec) in selected.iter().rev() {
            let workload = remaining.remove(w);
            slots.push(ExecSlot::new(CoreId(spec.core), spec.owner, workload));
            slot_workload_indices.push(w);
        }
        slots.reverse();
        slot_workload_indices.reverse();
        let call_reports = match path {
            EnginePath::Batched => engine.run_slots(&mut slots, budget),
            EnginePath::Reference => engine.run_slots_reference(&mut slots, budget),
            EnginePath::Parallel => engine.run_slots_parallel(&mut slots, budget),
        };
        for (slot, &w) in slots.iter().zip(&slot_workload_indices) {
            pmcs[w] += slot.pmcs;
        }
        reports.push(call_reports);
    }

    let mut llc_stats = Vec::with_capacity(num_sockets);
    let mut llc_occupancy = Vec::with_capacity(num_sockets);
    let mut llc_misses_of = Vec::with_capacity(num_sockets);
    for s in 0..num_sockets {
        let llc = engine.machine().socket(SocketId(s)).unwrap().llc();
        llc_stats.push(llc.stats());
        llc_occupancy.push(
            (0..=workload_count as OwnerId)
                .map(|owner| llc.occupancy_of(owner))
                .collect(),
        );
        llc_misses_of.push(
            (0..=workload_count as OwnerId)
                .map(|owner| llc.misses_of(owner))
                .collect(),
        );
    }
    Observed {
        reports,
        pmcs,
        llc_stats,
        llc_occupancy,
        llc_misses_of,
        shadow_misses: (0..=workload_count as OwnerId)
            .map(|owner| {
                engine
                    .shadow()
                    .map(|shadow| shadow.solo_misses(owner))
                    .unwrap_or(0)
            })
            .collect(),
        elapsed_cycles: engine.elapsed_cycles(),
    }
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Bip),
        Just(ReplacementPolicy::Dip),
        Just(ReplacementPolicy::Random),
    ]
}

fn arb_mode() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::Parallel),
        Just(Mode::Alternative),
        Just(Mode::Combined),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batched/epoch path and the per-op reference produce identical
    /// simulations: reports, PMCs, LLC statistics, per-owner attribution
    /// and shadow misses all match exactly — on the single-socket and the
    /// two-socket machine.
    #[test]
    fn batched_path_is_bit_identical_to_reference(
        policy in arb_policy(),
        mode in arb_mode(),
        seed in 0u64..1_000_000,
        workload_count in 2usize..4,
        budgets in prop::collection::vec(500u64..30_000, 1..5),
        shadow in prop_oneof![Just(false), Just(true)],
        sockets in prop_oneof![Just(1usize), Just(2)],
    ) {
        let batched = run_path(EnginePath::Batched, policy, mode, seed, workload_count, &budgets, shadow, sockets);
        let reference = run_path(EnginePath::Reference, policy, mode, seed, workload_count, &budgets, shadow, sockets);
        prop_assert_eq!(batched, reference);
    }

    /// The socket-parallel path matches the per-op reference exactly, with
    /// multi-socket placements (slots straddling both sockets run on
    /// separate threads), shadow attribution on and off, and both execution
    /// modes — including Alternative, which degenerates to a single
    /// populated socket and exercises the serial fallback.
    #[test]
    fn parallel_path_is_bit_identical_to_reference(
        policy in arb_policy(),
        mode in arb_mode(),
        seed in 0u64..1_000_000,
        workload_count in 2usize..4,
        budgets in prop::collection::vec(500u64..30_000, 1..5),
        shadow in prop_oneof![Just(false), Just(true)],
    ) {
        let parallel = run_path(EnginePath::Parallel, policy, mode, seed, workload_count, &budgets, shadow, 2);
        let reference = run_path(EnginePath::Reference, policy, mode, seed, workload_count, &budgets, shadow, 2);
        prop_assert_eq!(parallel, reference);
    }

    /// Per-socket bit-identity holds past two sockets: on 4- and 8-socket
    /// cloud machines, with enough slots to populate many sockets at once,
    /// the socket-parallel path still reproduces the reference exactly —
    /// the determinism guarantee behind the cloudscale scenario.
    #[test]
    fn parallel_path_is_bit_identical_at_4_and_8_sockets(
        policy in arb_policy(),
        mode in arb_mode(),
        seed in 0u64..1_000_000,
        workload_count in 4usize..10,
        budgets in prop::collection::vec(500u64..20_000, 1..4),
        shadow in prop_oneof![Just(false), Just(true)],
        sockets in prop_oneof![Just(4usize), Just(8)],
    ) {
        let parallel = run_path(EnginePath::Parallel, policy, mode, seed, workload_count, &budgets, shadow, sockets);
        let reference = run_path(EnginePath::Reference, policy, mode, seed, workload_count, &budgets, shadow, sockets);
        prop_assert_eq!(parallel, reference);
    }

    /// A single slot driven to large budgets (the tight single-slot epoch
    /// loop) also matches the reference exactly.
    #[test]
    fn single_slot_epochs_match_reference(
        policy in arb_policy(),
        seed in 0u64..1_000_000,
        budgets in prop::collection::vec(10_000u64..200_000, 1..4),
    ) {
        let batched = run_path(EnginePath::Batched, policy, Mode::Parallel, seed, 1, &budgets, false, 1);
        let reference = run_path(EnginePath::Reference, policy, Mode::Parallel, seed, 1, &budgets, false, 1);
        prop_assert_eq!(batched, reference);
    }
}

/// Non-property smoke check: the carried op buffer really continues the
/// stream (a workload interrupted mid-chunk resumes where the engine
/// stopped consuming, not where the prefetch stopped).
#[test]
fn carried_op_buffers_preserve_the_stream_across_calls() {
    let many_small_budgets: Vec<u64> = (0..12).map(|i| 700 + i * 137).collect();
    let one_big_budget = [many_small_budgets.iter().sum::<u64>()];
    let split = run_path(
        EnginePath::Batched,
        ReplacementPolicy::Lru,
        Mode::Parallel,
        99,
        2,
        &many_small_budgets,
        false,
        1,
    );
    let joined = run_path(
        EnginePath::Batched,
        ReplacementPolicy::Lru,
        Mode::Parallel,
        99,
        2,
        &one_big_budget,
        false,
        1,
    );
    // Not bit-identical (quantum boundaries differ: each call lets every
    // slot overshoot its budget by at most one op) but the same op streams
    // were consumed, so instruction counts must be very close.
    for (a, b) in split.pmcs.iter().zip(&joined.pmcs) {
        let (low, high) = (
            a.instructions.min(b.instructions),
            a.instructions.max(b.instructions),
        );
        assert!(
            high > 0 && high - low < high / 10,
            "stream diverged: {low} vs {high} instructions"
        );
    }
}
