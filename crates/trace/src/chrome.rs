//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! The exporter maps a [`TraceDoc`] onto the trace-event array format:
//! one `M` (metadata) event naming each track as a thread, one `X`
//! (complete) event per span, one `i` (instant) event per instant and one
//! `C` (counter) event per counter and histogram aggregate. The `ts`/`dur`
//! fields carry **simulated cycles**, not microseconds — Perfetto renders
//! them on a linear timebase either way, and the simulated domain is the
//! whole point (see DESIGN.md, Observability).
//!
//! Thread ids are assigned from the sorted set of track names, so the
//! export is deterministic for a deterministic document. The hand-rolled
//! [`validate_json`] syntax checker (this crate is dependency-free) lets
//! callers and CI assert the export is well-formed without a JSON
//! library.

use crate::format::TraceDoc;
use std::collections::BTreeSet;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a document as a Chrome trace-event JSON array.
pub fn to_chrome_json(doc: &TraceDoc) -> String {
    let tracks: BTreeSet<&str> = doc.events.iter().map(|e| e.track.as_str()).collect();
    let tid = |track: &str| -> usize {
        tracks
            .iter()
            .position(|t| *t == track)
            .map(|i| i + 1)
            .unwrap_or(0)
    };
    let mut entries: Vec<String> = Vec::new();
    for (index, track) in tracks.iter().enumerate() {
        entries.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            index + 1,
            escape(track)
        ));
    }
    for event in &doc.events {
        let args = if event.arg.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{\"arg\":\"{}\"}}", escape(&event.arg))
        };
        match event.dur {
            Some(dur) => entries.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{},\"dur\":{}{}}}",
                tid(&event.track),
                escape(&event.name),
                event.ts,
                dur,
                args
            )),
            None => entries.push(format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{},\"s\":\"t\"{}}}",
                tid(&event.track),
                escape(&event.name),
                event.ts,
                args
            )),
        }
    }
    for (name, value) in &doc.counters {
        entries.push(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"{}\",\"ts\":0,\"args\":{{\"value\":{}}}}}",
            escape(name),
            value
        ));
    }
    for (name, hist) in &doc.histograms {
        entries.push(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"{}\",\"ts\":0,\"args\":{{\"count\":{},\"total\":{}}}}}",
            escape(name),
            hist.count,
            hist.total
        ));
    }
    let mut out = String::from("[\n");
    for (index, entry) in entries.iter().enumerate() {
        out.push_str(entry);
        if index + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// A minimal JSON syntax checker: accepts exactly the RFC 8259 grammar
/// (objects, arrays, strings with escapes, numbers, `true`/`false`/
/// `null`) and reports the byte offset of the first violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {}", *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') | Some(b'\\') | Some(b'/') | Some(b'b') | Some(b'f')
                    | Some(b'n') | Some(b'r') | Some(b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes
                                .get(*pos)
                                .map(|b| b.is_ascii_hexdigit())
                                .unwrap_or(false)
                            {
                                return Err(format!("bad unicode escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{TraceConfig, TraceSink};

    #[test]
    fn export_is_valid_json_with_thread_metadata() {
        let mut sink = TraceSink::new(TraceConfig::On);
        sink.span("engine", "engine.run_slots", 0, 100);
        sink.instant_with(
            "service",
            "service.admit",
            7,
            "req=1 \"quoted\"".to_string(),
        );
        sink.counter_add("engine.cycles", 100);
        sink.hist_record("engine.batch_cycles", 100);
        let json = to_chrome_json(&TraceDoc::from_sink(&sink));
        validate_json(&json).unwrap();
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("req=1 \\\"quoted\\\""));
    }

    #[test]
    fn empty_doc_exports_an_empty_array() {
        let json = to_chrome_json(&TraceDoc::default());
        validate_json(&json).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2.5, -3e2, \"x\\n\", true, null]}").unwrap();
        assert!(validate_json("").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("[1] trailing").is_err());
        assert!(validate_json("01").is_ok()); // lenient: leading zeros pass the syntax check
        assert!(validate_json("1.").is_err());
    }
}
