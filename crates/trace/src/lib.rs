//! kyoto-trace: a dependency-free, deterministic tracing + metrics plane
//! keyed on **simulated time**.
//!
//! Every event in this crate is timestamped in a simulated-time domain —
//! engine `elapsed_cycles` for execution-layer spans, the cluster
//! control-plane cursor for boundary phases — never a wall-clock. That
//! makes traces part of the repo's determinism contract: the same
//! scenario produces byte-identical trace files across reruns and across
//! serial vs parallel execution, so `ci/check_determinism.sh` can gate
//! the observability layer exactly like it gates figure output.
//!
//! The pieces:
//!
//! - [`sink::TraceSink`] — the registration point: spans, instants,
//!   monotonic counters and fixed-bucket histograms behind stable
//!   interned ids with `BTreeMap`-ordered iteration. Disabled sinks
//!   ([`sink::TraceConfig::Off`], the default) cost one branch per
//!   record call; the `substrate_baseline` bench pins this.
//! - [`format::TraceDoc`] — the text format v1 snapshot with
//!   render/parse inverses.
//! - [`chrome`] — Chrome trace-event JSON export, loadable in Perfetto,
//!   with a dependency-free JSON syntax validator.
//! - [`profile::CycleProfile`] — the self/total cycles rollup per span
//!   name: the in-repo flamegraph substitute.
//!
//! Producers live in the other crates: `SimEngine` records per-batch
//! spans and PMC counters, the hypervisor records scheduler pick and
//! punishment instants, the cluster records boundary phases and fault
//! events (merging per-cell engine sinks deterministically in cell-id
//! order), and `FleetService` records the request → admission-decision →
//! placement causality chain. `figures --trace-out <path>` exports any
//! scenario's trace (text v1, or Chrome JSON when the path ends in
//! `.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod format;
pub mod profile;
pub mod sink;

pub use chrome::{to_chrome_json, validate_json};
pub use format::{DocEvent, TraceDoc, TraceFormatError, TRACE_FORMAT_VERSION};
pub use profile::{CycleProfile, ProfileRow};
pub use sink::{bucket_index, Event, Histogram, TraceConfig, TraceSink, HIST_BUCKETS};
