//! Text format v1 for trace documents: render/parse canonical inverses.
//!
//! The format is line-oriented, in the same family as the kyoto-service
//! request-trace format: a `version` directive first, then one line per
//! counter, histogram and event. Blank lines and `#` comments are
//! ignored, so writers may append human-oriented annotations (the
//! `figures --trace-out` writer appends the [`CycleProfile`] rollup as
//! comments) without affecting what parses back.
//!
//! ```text
//! # kyoto cycle trace
//! version 1
//! counter <name> <value>
//! hist <name> <count> <total> <b0> ... <b16>
//! span <track> <name> <ts> <dur> [<arg...>]
//! instant <track> <name> <ts> [<arg...>]
//! ```
//!
//! Names and tracks are single whitespace-free tokens; the optional
//! argument is the remainder of the line and may contain spaces.
//! Timestamps and durations are simulated time (engine cycles or the
//! cluster control cursor) — the format has no wall-clock fields by
//! construction. [`render`](TraceDoc::render) and
//! [`parse`](TraceDoc::parse) are inverses: parsing a rendered document
//! reproduces it exactly, and rendering a parsed document reproduces the
//! canonical text (comments and blank lines excluded).
//!
//! [`CycleProfile`]: crate::profile::CycleProfile

use crate::sink::{Histogram, TraceSink, HIST_BUCKETS};
use std::fmt;

/// The text format version this module renders and parses.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// A resolved trace event: interned ids replaced by owned names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocEvent {
    /// Track (Perfetto lane) the event belongs to.
    pub track: String,
    /// Event name.
    pub name: String,
    /// Start timestamp in the recording component's simulated-time domain.
    pub ts: u64,
    /// `Some(duration)` for a span, `None` for an instant.
    pub dur: Option<u64>,
    /// Free-form single-line argument (empty when absent).
    pub arg: String,
}

/// A self-contained, serialisable snapshot of a [`TraceSink`]: the
/// exchange value between the sink, the text format, the Chrome JSON
/// exporter and the profile rollup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceDoc {
    /// Counters as `(name, value)` in registration order.
    pub counters: Vec<(String, u64)>,
    /// Histograms as `(name, histogram)` in registration order.
    pub histograms: Vec<(String, Histogram)>,
    /// Events in record order.
    pub events: Vec<DocEvent>,
}

/// Why a trace document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFormatError {
    /// The `version` directive named a version this parser does not read.
    UnsupportedVersion(u64),
    /// A line did not match any directive of the format.
    MalformedLine {
        /// One-based line number in the input.
        line: usize,
        /// The offending line text.
        text: String,
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceFormatError::MalformedLine { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for TraceFormatError {}

impl TraceDoc {
    /// Snapshots a sink into a document.
    pub fn from_sink(sink: &TraceSink) -> Self {
        let mut doc = TraceDoc::default();
        doc.absorb(sink, "");
        doc
    }

    /// Appends a sink's contents, prefixing tracks, counters and
    /// histograms with `prefix` (event names are kept unprefixed, as in
    /// [`TraceSink::absorb`]). Used by `figures --trace-out` to merge the
    /// traced scenarios into one document, one prefix per scenario.
    pub fn absorb(&mut self, sink: &TraceSink, prefix: &str) {
        for (name, value) in sink.counters() {
            self.counters.push((format!("{prefix}{name}"), value));
        }
        for (name, hist) in sink.histograms() {
            self.histograms.push((format!("{prefix}{name}"), *hist));
        }
        for event in sink.events() {
            self.events.push(DocEvent {
                track: format!("{prefix}{}", sink.name(event.track)),
                name: sink.name(event.name).to_string(),
                ts: event.ts,
                dur: event.dur,
                arg: event.arg.clone(),
            });
        }
    }

    /// Renders the canonical text form (format v1).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# kyoto cycle trace\n");
        out.push_str(&format!("version {TRACE_FORMAT_VERSION}\n"));
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!("hist {name} {} {}", hist.count, hist.total));
            for bucket in &hist.buckets {
                out.push_str(&format!(" {bucket}"));
            }
            out.push('\n');
        }
        for event in &self.events {
            match event.dur {
                Some(dur) => out.push_str(&format!(
                    "span {} {} {} {dur}",
                    event.track, event.name, event.ts
                )),
                None => out.push_str(&format!(
                    "instant {} {} {}",
                    event.track, event.name, event.ts
                )),
            }
            if !event.arg.is_empty() {
                out.push(' ');
                out.push_str(&event.arg);
            }
            out.push('\n');
        }
        out
    }

    /// Parses text format v1 back into a document (the inverse of
    /// [`TraceDoc::render`]).
    pub fn parse(text: &str) -> Result<TraceDoc, TraceFormatError> {
        let mut doc = TraceDoc::default();
        let mut saw_version = false;
        for (index, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let malformed = || TraceFormatError::MalformedLine {
                line: index + 1,
                text: raw.to_string(),
            };
            if !saw_version {
                let rest = line.strip_prefix("version ").ok_or_else(malformed)?;
                let version: u64 = rest.trim().parse().map_err(|_| malformed())?;
                if version != u64::from(TRACE_FORMAT_VERSION) {
                    return Err(TraceFormatError::UnsupportedVersion(version));
                }
                saw_version = true;
            } else if let Some(rest) = line.strip_prefix("counter ") {
                let (name, value) = rest.split_once(' ').ok_or_else(malformed)?;
                let value: u64 = value.trim().parse().map_err(|_| malformed())?;
                doc.counters.push((name.to_string(), value));
            } else if let Some(rest) = line.strip_prefix("hist ") {
                let mut words = rest.split_whitespace();
                let name = words.next().ok_or_else(malformed)?;
                let mut numbers = Vec::with_capacity(2 + HIST_BUCKETS);
                for word in words {
                    numbers.push(word.parse::<u64>().map_err(|_| malformed())?);
                }
                if numbers.len() != 2 + HIST_BUCKETS {
                    return Err(malformed());
                }
                let mut hist = Histogram {
                    count: numbers[0],
                    total: numbers[1],
                    ..Histogram::default()
                };
                hist.buckets.copy_from_slice(&numbers[2..]);
                doc.histograms.push((name.to_string(), hist));
            } else if let Some(rest) = line.strip_prefix("span ") {
                let mut fields = rest.splitn(5, ' ');
                let track = fields.next().ok_or_else(malformed)?;
                let name = fields.next().ok_or_else(malformed)?;
                let ts = fields.next().ok_or_else(malformed)?;
                let dur = fields.next().ok_or_else(malformed)?;
                let arg = fields.next().unwrap_or("");
                doc.events.push(DocEvent {
                    track: track.to_string(),
                    name: name.to_string(),
                    ts: ts.parse().map_err(|_| malformed())?,
                    dur: Some(dur.parse().map_err(|_| malformed())?),
                    arg: arg.to_string(),
                });
            } else if let Some(rest) = line.strip_prefix("instant ") {
                let mut fields = rest.splitn(4, ' ');
                let track = fields.next().ok_or_else(malformed)?;
                let name = fields.next().ok_or_else(malformed)?;
                let ts = fields.next().ok_or_else(malformed)?;
                let arg = fields.next().unwrap_or("");
                doc.events.push(DocEvent {
                    track: track.to_string(),
                    name: name.to_string(),
                    ts: ts.parse().map_err(|_| malformed())?,
                    dur: None,
                    arg: arg.to_string(),
                });
            } else {
                return Err(malformed());
            }
        }
        if !saw_version && !doc.is_empty() {
            // Unreachable in practice (any directive before `version`
            // errors above); kept for clarity.
            return Err(TraceFormatError::UnsupportedVersion(0));
        }
        Ok(doc)
    }

    /// `true` when the document holds no metrics and no events.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceConfig;

    fn sample_doc() -> TraceDoc {
        let mut sink = TraceSink::new(TraceConfig::On);
        sink.counter_add("engine.cycles", 123);
        sink.counter_add("engine.batches", 2);
        sink.hist_record("engine.batch_cycles", 100);
        sink.hist_record("engine.batch_cycles", 23);
        sink.span("engine", "engine.run_slots", 0, 100);
        sink.span_with("engine", "engine.run_slots", 100, 23, "batch=2".to_string());
        sink.instant_with("service", "service.admit", 7, "req=1 cell=0".to_string());
        TraceDoc::from_sink(&sink)
    }

    #[test]
    fn render_parse_round_trip() {
        let doc = sample_doc();
        let text = doc.render();
        let parsed = TraceDoc::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Rendering the parse reproduces the canonical text.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let doc = sample_doc();
        let mut text = doc.render();
        text.push_str("\n# cycle profile\n# engine.run_slots 2 123 123\n\n");
        assert_eq!(TraceDoc::parse(&text).unwrap(), doc);
    }

    #[test]
    fn version_must_come_first_and_match() {
        assert_eq!(
            TraceDoc::parse("version 2\n"),
            Err(TraceFormatError::UnsupportedVersion(2))
        );
        assert_eq!(
            TraceDoc::parse("counter a 1\nversion 1\n"),
            Err(TraceFormatError::MalformedLine {
                line: 1,
                text: "counter a 1".to_string()
            })
        );
        assert_eq!(
            TraceDoc::parse("# only comments\n\n").unwrap(),
            TraceDoc::default()
        );
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let text = "version 1\nspan engine engine.run_slots zero 1\n";
        assert_eq!(
            TraceDoc::parse(text),
            Err(TraceFormatError::MalformedLine {
                line: 2,
                text: "span engine engine.run_slots zero 1".to_string()
            })
        );
        let text = "version 1\nhist h 1 2 3\n";
        assert!(matches!(
            TraceDoc::parse(text),
            Err(TraceFormatError::MalformedLine { line: 2, .. })
        ));
        let text = "version 1\nwibble\n";
        assert!(matches!(
            TraceDoc::parse(text),
            Err(TraceFormatError::MalformedLine { line: 2, .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = TraceFormatError::MalformedLine {
            line: 3,
            text: "bad".to_string(),
        };
        assert!(err.to_string().contains("line 3"));
        assert!(TraceFormatError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
    }
}
