//! The trace sink: interned names, monotonic counters, fixed-bucket
//! histograms and a simulated-time event log.
//!
//! A [`TraceSink`] is the single registration point for everything the
//! tracing plane records. Names (spans, tracks, counters, histograms) are
//! interned once into stable integer ids — the id is the index of the
//! first registration, so identical recording sequences always produce
//! identical id assignments — and every metric map is a `BTreeMap` keyed
//! by id, so iteration order is the registration order, never a hash
//! order. Timestamps are *simulated* time (engine `elapsed_cycles`, or
//! the cluster control-plane cursor); the sink never consults a
//! wall-clock.
//!
//! Disabled sinks are near-zero-cost: every recording method starts with
//! a branch on [`TraceSink::is_enabled`] and returns immediately without
//! interning, allocating or touching any map. The `substrate_baseline`
//! bench pins this (`trace_overhead` section, gated by
//! `ci/check_bench.sh`).

use std::collections::BTreeMap;

/// Number of power-of-two buckets in a [`Histogram`]. Bucket `i` counts
/// values `v` with `floor(log2(v)) == i` (bucket 0 also counts `v == 0`);
/// the last bucket absorbs everything at or above `2^(HIST_BUCKETS - 1)`.
pub const HIST_BUCKETS: usize = 17;

/// Whether a component records into its trace sink.
///
/// This is the switch carried by configuration structs (it is `Copy` so it
/// can ride inside `ClusterConfig`). The default is [`TraceConfig::Off`]:
/// tracing is strictly opt-in and the disabled path is bench-gated to be
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// No recording; every sink method is an early-return branch.
    #[default]
    Off,
    /// Record spans, instants, counters and histograms.
    On,
}

impl TraceConfig {
    /// `true` when tracing is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, TraceConfig::On)
    }
}

/// A fixed-bucket power-of-two histogram (see [`HIST_BUCKETS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
    }
}

/// The bucket a value falls into: `floor(log2(value))`, clamped to the
/// last bucket (zero maps to bucket 0).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((63 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// One recorded trace event: a span (with a duration) or an instant.
///
/// `track` and `name` are interned ids resolvable via
/// [`TraceSink::name`]. `ts` is simulated time in the recording
/// component's domain (engine cycles, or the cluster control cursor) —
/// never wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Interned id of the track (Perfetto thread) the event belongs to.
    pub track: u32,
    /// Interned id of the event name.
    pub name: u32,
    /// Start timestamp in the recording component's simulated-time domain.
    pub ts: u64,
    /// `Some(duration)` for a span, `None` for an instant.
    pub dur: Option<u64>,
    /// Free-form single-line argument (empty when absent). Used for
    /// causality keys like `req=7`.
    pub arg: String,
}

/// The deterministic registration point for spans, counters and
/// histograms (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    enabled: bool,
    /// Interned names; the id of a name is its index here.
    names: Vec<String>,
    /// Reverse lookup for interning.
    ids: BTreeMap<String, u32>,
    /// Monotonic counters, keyed by interned id (iteration = registration
    /// order).
    counters: BTreeMap<u32, u64>,
    /// Fixed-bucket histograms, keyed by interned id.
    histograms: BTreeMap<u32, Histogram>,
    /// Spans and instants in record order.
    events: Vec<Event>,
}

impl TraceSink {
    /// A sink in the given initial state.
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            enabled: config.is_on(),
            ..TraceSink::default()
        }
    }

    /// `true` when this sink records (the hot-path branch).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Interns a name, returning its stable id. Names must not contain
    /// whitespace (they are single tokens of text format v1).
    pub fn intern(&mut self, name: &str) -> u32 {
        debug_assert!(
            !name.chars().any(char::is_whitespace),
            "trace names must be whitespace-free: {name:?}"
        );
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The name behind an interned id (panics on a foreign id; ids are
    /// only ever produced by this sink's [`TraceSink::intern`]).
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Adds to a monotonic counter. No-op when disabled.
    #[inline]
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let id = self.intern(name);
        *self.counters.entry(id).or_insert(0) += delta;
    }

    /// Raises a counter to `value` if it is currently lower (monotonic
    /// set, used to mirror externally-accumulated ledgers). No-op when
    /// disabled.
    #[inline]
    pub fn counter_set_max(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let id = self.intern(name);
        let slot = self.counters.entry(id).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// The current value of a counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.ids
            .get(name)
            .and_then(|id| self.counters.get(id))
            .copied()
            .unwrap_or(0)
    }

    /// Sums every counter whose name ends with `suffix` (e.g.
    /// `.engine.cycles` over all cell prefixes).
    pub fn sum_counters_with_suffix(&self, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| self.names[**id as usize].ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Records one observation into a histogram. No-op when disabled.
    #[inline]
    pub fn hist_record(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        let id = self.intern(name);
        self.histograms.entry(id).or_default().record(value);
    }

    /// Records a span. No-op when disabled.
    #[inline]
    pub fn span(&mut self, track: &str, name: &str, ts: u64, dur: u64) {
        if !self.enabled {
            return;
        }
        self.push_event(track, name, ts, Some(dur), String::new());
    }

    /// Records a span with an argument. No-op when disabled.
    #[inline]
    pub fn span_with(&mut self, track: &str, name: &str, ts: u64, dur: u64, arg: String) {
        if !self.enabled {
            return;
        }
        self.push_event(track, name, ts, Some(dur), arg);
    }

    /// Records an instant. No-op when disabled.
    #[inline]
    pub fn instant(&mut self, track: &str, name: &str, ts: u64) {
        if !self.enabled {
            return;
        }
        self.push_event(track, name, ts, None, String::new());
    }

    /// Records an instant with an argument. No-op when disabled.
    #[inline]
    pub fn instant_with(&mut self, track: &str, name: &str, ts: u64, arg: String) {
        if !self.enabled {
            return;
        }
        self.push_event(track, name, ts, None, arg);
    }

    fn push_event(&mut self, track: &str, name: &str, ts: u64, dur: Option<u64>, arg: String) {
        debug_assert!(!arg.contains('\n'), "trace args must be single-line");
        let track = self.intern(track);
        let name = self.intern(name);
        self.events.push(Event {
            track,
            name,
            ts,
            dur,
            arg,
        });
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Counters as `(name, value)` in id (registration) order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters
            .iter()
            .map(|(id, v)| (self.names[*id as usize].as_str(), *v))
    }

    /// Histograms as `(name, histogram)` in id (registration) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms
            .iter()
            .map(|(id, h)| (self.names[*id as usize].as_str(), h))
    }

    /// Takes everything recorded so far, leaving this sink enabled but
    /// empty of data (interned names are kept so ids stay stable).
    ///
    /// The per-cell engine sinks are drained once per epoch and absorbed
    /// into the cluster sink — always in cell-id order, after every cell
    /// has finished its epoch, so serial and cell-parallel runs merge
    /// identically.
    pub fn drain(&mut self) -> TraceSink {
        TraceSink {
            enabled: self.enabled,
            names: self.names.clone(),
            ids: self.ids.clone(),
            counters: std::mem::take(&mut self.counters),
            histograms: std::mem::take(&mut self.histograms),
            events: std::mem::take(&mut self.events),
        }
    }

    /// Merges another sink's data into this one, prefixing every track,
    /// counter and histogram name with `prefix` (e.g. `cell0.`). Event
    /// *names* keep their original spelling so profile rollups aggregate
    /// across cells; tracks are prefixed so Perfetto shows one lane per
    /// cell. No-op when disabled.
    pub fn absorb(&mut self, other: &TraceSink, prefix: &str) {
        if !self.enabled {
            return;
        }
        for event in &other.events {
            let track = format!("{prefix}{}", other.name(event.track));
            let track = self.intern(&track);
            let name = self.intern(other.name(event.name));
            self.events.push(Event {
                track,
                name,
                ts: event.ts,
                dur: event.dur,
                arg: event.arg.clone(),
            });
        }
        for (name, value) in other.counters() {
            let id = self.intern(&format!("{prefix}{name}"));
            *self.counters.entry(id).or_insert(0) += value;
        }
        for (name, hist) in other.histograms() {
            let id = self.intern(&format!("{prefix}{name}"));
            self.histograms.entry(id).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::new(TraceConfig::Off);
        sink.counter_add("a", 1);
        sink.hist_record("h", 7);
        sink.span("t", "s", 0, 10);
        sink.instant("t", "i", 5);
        assert!(!sink.is_enabled());
        assert!(sink.events().is_empty());
        assert_eq!(sink.counters().count(), 0);
        assert_eq!(sink.histograms().count(), 0);
        assert_eq!(sink.counter_value("a"), 0);
    }

    #[test]
    fn ids_are_stable_and_iteration_is_registration_ordered() {
        let mut sink = TraceSink::new(TraceConfig::On);
        sink.counter_add("zeta", 1);
        sink.counter_add("alpha", 2);
        sink.counter_add("zeta", 3);
        let names: Vec<_> = sink.counters().map(|(n, v)| (n.to_string(), v)).collect();
        assert_eq!(
            names,
            vec![("zeta".to_string(), 4), ("alpha".to_string(), 2)]
        );
        assert_eq!(sink.intern("zeta"), sink.intern("zeta"));
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let mut h = Histogram::default();
        h.record(0);
        h.record(5);
        assert_eq!(h.count, 2);
        assert_eq!(h.total, 5);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
    }

    #[test]
    fn drain_resets_data_but_keeps_names() {
        let mut sink = TraceSink::new(TraceConfig::On);
        sink.counter_add("c", 2);
        sink.span("t", "s", 1, 2);
        let drained = sink.drain();
        assert_eq!(drained.counter_value("c"), 2);
        assert_eq!(drained.events().len(), 1);
        assert!(sink.events().is_empty());
        assert_eq!(sink.counter_value("c"), 0);
        // Ids survive the drain.
        assert_eq!(sink.intern("c"), drained.ids["c"]);
    }

    #[test]
    fn absorb_prefixes_tracks_and_metrics() {
        let mut cell = TraceSink::new(TraceConfig::On);
        cell.span("engine", "engine.run_slots", 0, 9);
        cell.counter_add("engine.cycles", 9);
        cell.hist_record("engine.batch_cycles", 9);
        let mut cluster = TraceSink::new(TraceConfig::On);
        cluster.absorb(&cell.drain(), "cell0.");
        cluster.absorb(&cell.drain(), "cell0.");
        let event = &cluster.events()[0];
        assert_eq!(cluster.name(event.track), "cell0.engine");
        assert_eq!(cluster.name(event.name), "engine.run_slots");
        assert_eq!(cluster.counter_value("cell0.engine.cycles"), 9);
        assert_eq!(cluster.sum_counters_with_suffix("engine.cycles"), 9);
    }
}
