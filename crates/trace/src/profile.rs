//! `CycleProfile`: the self/total-cycles rollup over a trace document —
//! the repo's flamegraph substitute.
//!
//! Spans on one track form a nesting forest (a span is a child of the
//! innermost earlier span on the same track whose `[ts, ts + dur)` range
//! contains its start). The profile aggregates, per span *name* across
//! all tracks: how many spans carried the name, their summed duration
//! (**total** cycles) and the summed duration minus the duration of
//! direct children (**self** cycles). Rows sort by total descending, then
//! name, so the hottest span family leads — exactly the reading order of
//! a flamegraph, without the SVG.

use crate::format::TraceDoc;
use std::collections::BTreeMap;

/// One aggregated profile row (per span name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name the row aggregates.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed span durations, in the spans' simulated-time domain.
    pub total: u64,
    /// Summed durations minus the durations of direct children.
    pub self_cycles: u64,
}

/// The self/total rollup of every span in a document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CycleProfile {
    /// Rows sorted by total cycles descending, then name.
    pub rows: Vec<ProfileRow>,
}

impl CycleProfile {
    /// Builds the rollup from a document's spans (instants are ignored).
    pub fn from_doc(doc: &TraceDoc) -> Self {
        // Collect spans per track, preserving record order.
        let mut per_track: BTreeMap<&str, Vec<(u64, u64, &str)>> = BTreeMap::new();
        for event in &doc.events {
            if let Some(dur) = event.dur {
                per_track.entry(event.track.as_str()).or_default().push((
                    event.ts,
                    dur,
                    event.name.as_str(),
                ));
            }
        }
        let mut rows: BTreeMap<&str, ProfileRow> = BTreeMap::new();
        for spans in per_track.values_mut() {
            // Sort by start, widest-first on ties, so parents precede the
            // children they contain.
            spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            // (end, name) stack of currently-open spans.
            let mut stack: Vec<(u64, &str)> = Vec::new();
            for &(ts, dur, name) in spans.iter() {
                while let Some(&(end, _)) = stack.last() {
                    if end <= ts {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&(_, parent)) = stack.last() {
                    if let Some(row) = rows.get_mut(parent) {
                        row.self_cycles = row.self_cycles.saturating_sub(dur);
                    }
                }
                let row = rows.entry(name).or_insert_with(|| ProfileRow {
                    name: name.to_string(),
                    count: 0,
                    total: 0,
                    self_cycles: 0,
                });
                row.count += 1;
                row.total += dur;
                row.self_cycles += dur;
                stack.push((ts + dur, name));
            }
        }
        let mut rows: Vec<ProfileRow> = rows.into_values().collect();
        rows.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(&b.name)));
        CycleProfile { rows }
    }

    /// Renders the rollup as an aligned text table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("span                              count        total         self\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<32} {:>6} {:>12} {:>12}\n",
                row.name, row.count, row.total, row.self_cycles
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{TraceConfig, TraceSink};

    #[test]
    fn self_cycles_subtract_direct_children() {
        let mut sink = TraceSink::new(TraceConfig::On);
        // epoch [0, 100) contains two run_slots spans [0, 40) and [40, 90).
        sink.span("engine", "cell.epoch", 0, 100);
        sink.span("engine", "engine.run_slots", 0, 40);
        sink.span("engine", "engine.run_slots", 40, 50);
        // An unrelated track does not nest into the first.
        sink.span("other", "other.work", 10, 5);
        let profile = CycleProfile::from_doc(&TraceDoc::from_sink(&sink));
        let get = |name: &str| profile.rows.iter().find(|r| r.name == name).unwrap();
        assert_eq!(get("cell.epoch").total, 100);
        assert_eq!(get("cell.epoch").self_cycles, 10);
        assert_eq!(get("engine.run_slots").count, 2);
        assert_eq!(get("engine.run_slots").total, 90);
        assert_eq!(get("engine.run_slots").self_cycles, 90);
        assert_eq!(get("other.work").self_cycles, 5);
        // Hottest first.
        assert_eq!(profile.rows[0].name, "cell.epoch");
    }

    #[test]
    fn grandchildren_only_subtract_from_their_parent() {
        let mut sink = TraceSink::new(TraceConfig::On);
        sink.span("t", "a", 0, 100);
        sink.span("t", "b", 10, 50);
        sink.span("t", "c", 20, 10);
        let profile = CycleProfile::from_doc(&TraceDoc::from_sink(&sink));
        let get = |name: &str| profile.rows.iter().find(|r| r.name == name).unwrap();
        assert_eq!(get("a").self_cycles, 50);
        assert_eq!(get("b").self_cycles, 40);
        assert_eq!(get("c").self_cycles, 10);
    }

    #[test]
    fn render_is_aligned_and_deterministic() {
        let mut sink = TraceSink::new(TraceConfig::On);
        sink.span("t", "a", 0, 10);
        let profile = CycleProfile::from_doc(&TraceDoc::from_sink(&sink));
        let text = profile.render();
        assert!(text.starts_with("span"));
        assert!(text.contains('a'));
        assert_eq!(text, profile.render());
    }
}
