//! Property tests of the trace text format: render/parse are inverses
//! over arbitrary event streams, and the Chrome JSON conversion of any
//! document stays syntactically valid.

use kyoto_trace::{to_chrome_json, validate_json, DocEvent, Histogram, TraceDoc};
use proptest::prelude::*;

const NAMES: [&str; 8] = [
    "engine.run_slots",
    "cell.epoch",
    "cluster.boundary",
    "planner.plan",
    "service.admission",
    "hv.pick",
    "engine.cycles",
    "engine.batch_cycles",
];
const TRACKS: [&str; 4] = ["engine", "cell0.engine", "cluster", "service"];
const ARGS: [&str; 5] = [
    "",
    "req=7",
    "cell=0 vm=3",
    "kind=place cell=1",
    "a=1 b=2 c=3",
];

proptest! {
    #[test]
    fn render_parse_round_trips_arbitrary_streams(
        counters in prop::collection::vec((0usize..8, 0u64..1 << 62), 0..8),
        hists in prop::collection::vec(
            (0usize..8, prop::collection::vec(0u64..1_000_000, 0..6)),
            0..4,
        ),
        events in prop::collection::vec(
            ((0usize..4, 0usize..8), 0u64..1_000_000, prop::option::of(0u64..10_000), 0usize..5),
            0..32,
        ),
    ) {
        let mut doc = TraceDoc::default();
        for (name, value) in counters {
            doc.counters.push((NAMES[name].to_string(), value));
        }
        for (name, values) in hists {
            let mut hist = Histogram::default();
            for value in values {
                hist.record(value);
            }
            doc.histograms.push((NAMES[name].to_string(), hist));
        }
        for ((track, name), ts, dur, arg) in events {
            doc.events.push(DocEvent {
                track: TRACKS[track].to_string(),
                name: NAMES[name].to_string(),
                ts,
                dur,
                arg: ARGS[arg].to_string(),
            });
        }

        // parse(render(doc)) == doc ...
        let text = doc.render();
        let parsed = TraceDoc::parse(&text).expect("rendered documents parse");
        prop_assert_eq!(&parsed, &doc);
        // ... and render(parse(text)) == text (canonical inverse).
        prop_assert_eq!(parsed.render(), text);

        // Appended comments never change the parse.
        let mut annotated = text.clone();
        annotated.push_str("\n# cycle profile\n# engine.run_slots 1 2 3\n");
        prop_assert_eq!(TraceDoc::parse(&annotated).expect("comments ignored"), doc.clone());

        // The Perfetto export of any document is well-formed JSON.
        let json = to_chrome_json(&doc);
        prop_assert!(validate_json(&json).is_ok(), "invalid chrome JSON: {:?}", validate_json(&json));
    }
}
