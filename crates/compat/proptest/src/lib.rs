//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! The real crate cannot be fetched in this build environment, so this shim
//! re-implements the API surface the property tests rely on: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just` strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop::array::uniform7`,
//! the `prop_oneof!` union, and the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros. Sampling is plain deterministic random generation (seeded per
//! test name): there is no shrinking and no persisted failure corpus, but
//! every property is still exercised across the configured number of cases.

#![forbid(unsafe_code)]

/// Deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`, so each
    /// property test replays the same cases on every run.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, func }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`].
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Sub-strategy namespaces mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length specification for [`vec()`]: an exact length or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange {
                    min: exact,
                    max_exclusive: exact + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(range: core::ops::Range<usize>) -> Self {
                assert!(range.start < range.end, "empty vec size range");
                SizeRange {
                    min: range.start,
                    max_exclusive: range.end,
                }
            }
        }

        /// Strategy for `Vec`s of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Output of [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy yielding `None` about a quarter of the time, else
        /// `Some(inner)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Output of [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy for `[T; 7]` arrays of `element` values.
        pub fn uniform7<S: Strategy>(element: S) -> Uniform7<S> {
            Uniform7 { element }
        }

        /// Output of [`uniform7`].
        #[derive(Debug, Clone)]
        pub struct Uniform7<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for Uniform7<S> {
            type Value = [S::Value; 7];

            fn generate(&self, rng: &mut TestRng) -> [S::Value; 7] {
                core::array::from_fn(|_| self.element.generate(rng))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` sampling the strategies over the configured cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __kyoto_config = $config;
            let mut __kyoto_rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __kyoto_case in 0..__kyoto_config.cases {
                let __kyoto_result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut __kyoto_rng);)*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match __kyoto_result {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!("case {} of {}: {}", __kyoto_case, stringify!($name), message)
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_the_size_range(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn exact_vec_size_is_exact(v in prop::collection::vec(prop::option::of(1u32..3), 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn oneof_and_map_compose(pair in prop_oneof![
            (0.0f64..1.0).prop_map(|x| (true, x)),
            (1.0f64..2.0).prop_map(|x| (false, x)),
        ]) {
            let (flag, value) = pair;
            if flag {
                prop_assert!(value < 1.0);
            } else {
                prop_assert!(value >= 1.0);
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }

        #[test]
        fn arrays_have_seven_elements(a in prop::array::uniform7(0u64..100)) {
            prop_assert_eq!(a.len(), 7);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
