//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64, the
//! same algorithm the real crate uses on 64-bit targets), the [`Rng`] and
//! [`SeedableRng`] traits with the methods the workloads rely on
//! (`gen_bool`, `gen_range`) and [`seq::SliceRandom::shuffle`]. Streams are
//! deterministic per seed, which is all the simulation needs; they are not
//! guaranteed to be bit-identical with the real crate's streams.

#![forbid(unsafe_code)]

/// Construction of RNGs from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by an [`Rng`].
pub trait SampleUniform: Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128) - (low as u128);
                // Lemire multiply-shift: unbiased enough for simulation use.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (low as u128 + draw) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 uniformly random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Core random-number-generation interface.
pub trait Rng {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value uniformly from `range` (half-open, like `rand` 0.8).
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Namespaced RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the real crate does for integer seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` we use).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
