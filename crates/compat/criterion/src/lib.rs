//! Offline stand-in for the subset of `criterion` used by this workspace.
//!
//! The real crate cannot be fetched in this build environment. This shim
//! keeps `cargo bench` working with the same bench sources: it runs each
//! benchmark closure for a bounded wall-clock budget, reports the mean
//! iteration time (and derived throughput) on stdout, and skips the
//! statistical machinery (no outlier analysis, no HTML reports). The
//! `--bench` / filter CLI arguments Criterion receives from cargo are
//! accepted and benchmark names can be filtered by substring.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement backends (only wall time exists here).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Throughput advertised for a benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted id types into a display label.
pub trait IntoBenchmarkLabel {
    /// The label shown in reports.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to benchmark closures to time the measured routine.
pub struct Bencher {
    budget: Duration,
    /// Mean wall-clock time of one iteration, filled by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the measurement budget
    /// is spent (with one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if started.elapsed() >= self.budget {
                break;
            }
        }
        self.mean = started.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    filter: Option<String>,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples (accepted for API compatibility; the shim
    /// sizes runs by wall-clock budget instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        // The real crate spends `time` per sample set; a fraction of it is
        // plenty for a mean-only estimate and keeps `cargo bench` quick.
        self.measurement_time = time.min(Duration::from_secs(2));
        self
    }

    /// Sets the warm-up budget (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.run(&label, |bencher| routine(bencher));
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        self.run(&label, |bencher| routine(bencher, input));
        self
    }

    fn run(&mut self, label: &str, mut routine: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            budget: self.measurement_time,
            mean: Duration::ZERO,
            iters: 0,
        };
        routine(&mut bencher);
        let mut line = format!(
            "{full}: {:>12} mean over {} iters",
            format!("{:.2?}", bencher.mean),
            bencher.iters
        );
        if let Some(throughput) = self.throughput {
            let secs = bencher.mean.as_secs_f64();
            if secs > 0.0 {
                match throughput {
                    Throughput::Elements(n) => {
                        line += &format!("  ({:.1} Melem/s)", n as f64 / secs / 1e6);
                    }
                    Throughput::Bytes(n) => {
                        line += &format!("  ({:.1} MiB/s)", n as f64 / secs / (1 << 20) as f64);
                    }
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench` plus any user filter;
        // treat the first free argument as a substring filter like the real
        // crate does.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with("--"));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl std::fmt::Display,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            name: name.to_string(),
            filter,
            throughput: None,
            measurement_time: Duration::from_millis(300),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts_iterations() {
        let mut bencher = Bencher {
            budget: Duration::from_millis(5),
            mean: Duration::ZERO,
            iters: 0,
        };
        let mut count = 0u64;
        bencher.iter(|| {
            count += 1;
            black_box(count)
        });
        assert!(bencher.iters >= 1);
        assert!(count > bencher.iters, "warm-up call must not be counted");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("a", 3).into_label(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("lru").into_label(), "lru");
    }
}
