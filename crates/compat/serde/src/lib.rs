//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serialises anything (reports are rendered as hand-written tables
//! and JSON). This stub keeps those derives compiling without registry
//! access: the traits are markers satisfied by blanket implementations, and
//! the re-exported derive macros expand to nothing. Swapping the path
//! dependency for the real `serde` restores full serialisation support
//! without touching any other source file.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types (the real trait's `'de` lifetime is dropped — nothing bounds on it).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};
