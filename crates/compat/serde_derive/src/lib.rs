//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no registry access, so the real `serde_derive`
//! cannot be fetched. The workspace only uses `#[derive(Serialize,
//! Deserialize)]` as a marker (nothing is actually serialised), and the
//! sibling `serde` stub provides blanket implementations of both traits.
//! These derives therefore expand to nothing; they exist so the attribute
//! positions keep compiling unchanged against the real crate's API.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (the `serde` stub blanket-implements the trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (the `serde` stub blanket-implements the trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
