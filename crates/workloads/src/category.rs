//! VM categories used by the problem-assessment experiments (Section 2.2.4).
//!
//! The paper classifies VMs by where their working set fits:
//!
//! * **C1** — fits within the intermediate-level caches (L1 + L2), so the VM
//!   is insensitive to both ILC and LLC contention;
//! * **C2** — fits within the LLC but not the ILC, so the VM is the most
//!   sensitive to LLC contention (its whole working set can be evicted);
//! * **C3** — exceeds the LLC, so the VM already misses to memory on its own
//!   but still suffers additional misses under contention.

use kyoto_sim::topology::MachineConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Working-set category of a VM (Section 2.2.4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Working set fits the intermediate-level caches (L1 + L2).
    C1,
    /// Working set fits the LLC but not the ILC.
    C2,
    /// Working set exceeds the LLC.
    C3,
}

impl Category {
    /// All categories, in order.
    pub const ALL: [Category; 3] = [Category::C1, Category::C2, Category::C3];

    /// Classifies a working-set size against a machine's cache capacities.
    pub fn classify(working_set_bytes: u64, machine: &MachineConfig) -> Category {
        let ilc_capacity = machine.l1d.size_bytes + machine.l2.size_bytes;
        if working_set_bytes <= ilc_capacity {
            Category::C1
        } else if working_set_bytes <= machine.llc.size_bytes {
            Category::C2
        } else {
            Category::C3
        }
    }

    /// A working-set size (in bytes) squarely inside this category for the
    /// given machine: half the ILC for C1, 60 % of the LLC for C2, and four
    /// times the LLC for C3.
    pub fn representative_working_set(&self, machine: &MachineConfig) -> u64 {
        let ilc = machine.l1d.size_bytes + machine.l2.size_bytes;
        let llc = machine.llc.size_bytes;
        match self {
            Category::C1 => (ilc / 2).max(machine.l1d.line_size as u64),
            Category::C2 => (llc * 6 / 10).max(ilc * 2),
            Category::C3 => llc * 4,
        }
    }

    /// Whether a VM in this category is *sensitive* to LLC contention.
    /// The paper calls C2 and C3 VMs "sensitive VMs" (end of Section 2.2.5).
    pub fn is_sensitive(&self) -> bool {
        matches!(self, Category::C2 | Category::C3)
    }

    /// Index (1-based) used in the paper's notation `v^i_rep` / `v^i_dis`.
    pub fn index(&self) -> usize {
        match self {
            Category::C1 => 1,
            Category::C2 => 2,
            Category::C3 => 3,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_thresholds() {
        let machine = MachineConfig::paper_machine();
        // 64 KB fits L1+L2 (288 KB).
        assert_eq!(Category::classify(64 * 1024, &machine), Category::C1);
        // 4 MB fits the 10 MB LLC but not the ILC.
        assert_eq!(Category::classify(4 * 1024 * 1024, &machine), Category::C2);
        // 64 MB exceeds the LLC.
        assert_eq!(Category::classify(64 * 1024 * 1024, &machine), Category::C3);
    }

    #[test]
    fn representative_working_sets_fall_in_their_own_category() {
        for scale in [1u64, 16, 64] {
            let machine = MachineConfig::scaled_paper_machine(scale);
            for category in Category::ALL {
                let ws = category.representative_working_set(&machine);
                assert_eq!(
                    Category::classify(ws, &machine),
                    category,
                    "scale {scale}, category {category}"
                );
            }
        }
    }

    #[test]
    fn sensitivity_matches_the_papers_definition() {
        assert!(!Category::C1.is_sensitive());
        assert!(Category::C2.is_sensitive());
        assert!(Category::C3.is_sensitive());
    }

    #[test]
    fn display_and_index() {
        assert_eq!(Category::C1.to_string(), "C1");
        assert_eq!(Category::C3.index(), 3);
        assert!(Category::C1 < Category::C2);
    }
}
