//! # kyoto-workloads — workload models for the Kyoto reproduction
//!
//! The paper drives its evaluation with three families of applications:
//!
//! * a **micro benchmark** (Section 2.2.2) following Ulrich Drepper's
//!   pointer-chase pattern: a circular linked list of randomly chained
//!   elements whose total size is the working set;
//! * **SPEC CPU2006** applications (gcc, omnetpp, soplex, lbm, mcf, milc,
//!   xalan, astar, bzip, hmmer, povray) used as sensitive and disruptive VMs
//!   (Table 2 and Fig. 4);
//! * **blockie**, the most contentious kernel from Mars & Soffa's contention
//!   benchmark suite.
//!
//! Real SPEC binaries cannot run inside a simulation library, so each
//! application is modelled as a parameterised memory-access generator whose
//! working-set size, memory intensity, locality and memory-level parallelism
//! are chosen to match the application's published memory behaviour. What
//! matters for reproducing the paper is the *relative* behaviour — which
//! applications are sensitive, which are aggressive, and how the two ranking
//! indicators of Fig. 4 disagree — and those orderings are preserved.
//!
//! All models implement [`kyoto_sim::workload::Workload`] and are
//! deterministic for a given seed.
//!
//! # Example
//!
//! ```
//! use kyoto_workloads::spec::{SpecApp, SpecWorkload};
//! use kyoto_sim::workload::Workload;
//!
//! // A gcc-like VM workload on a 16x scaled-down machine.
//! let mut gcc = SpecWorkload::new(SpecApp::Gcc, 16, 42);
//! assert_eq!(gcc.name(), "gcc");
//! let _op = gcc.next_op();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod interactive;
pub mod micro;
pub mod spec;
pub mod synthetic;

pub use category::Category;
pub use interactive::Interactive;
pub use micro::PointerChase;
pub use spec::{SpecApp, SpecProfile, SpecWorkload};
pub use synthetic::{RandomAccess, Streaming};
