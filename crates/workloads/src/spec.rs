//! SPEC CPU2006-like application models plus `blockie`.
//!
//! The paper evaluates Kyoto with SPEC CPU2006 applications and the
//! `blockie` contention kernel (Table 2, Fig. 4, Fig. 9, Fig. 10, Fig. 12).
//! Running the real binaries is impossible inside a simulation library, so
//! every application is modelled as a parameterised access-pattern generator
//! ([`SpecWorkload`]) whose profile ([`SpecProfile`]) captures the features
//! the paper's experiments depend on:
//!
//! * the **working-set size** decides sensitivity (does the footprint fit
//!   the LLC?);
//! * the **memory intensity** and **memory-level parallelism** decide how
//!   many LLC lines the application can evict per millisecond, i.e. its
//!   aggressiveness and its Equation-1 value;
//! * the **locality** (hot-set reuse) decides the miss rate per instruction,
//!   i.e. the raw-LLCM indicator that Fig. 4 shows to be a worse
//!   aggressiveness predictor than Equation 1.

use crate::category::Category;
use kyoto_sim::topology::MachineConfig;
use kyoto_sim::workload::{Op, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cache-line size assumed by the workload models.
const LINE_SIZE: u64 = 64;

/// The applications used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecApp {
    Astar,
    Blockie,
    Bzip,
    Gcc,
    Hmmer,
    Lbm,
    Mcf,
    Milc,
    Omnetpp,
    Povray,
    Soplex,
    Xalan,
}

impl SpecApp {
    /// Every modelled application.
    pub const ALL: [SpecApp; 12] = [
        SpecApp::Astar,
        SpecApp::Blockie,
        SpecApp::Bzip,
        SpecApp::Gcc,
        SpecApp::Hmmer,
        SpecApp::Lbm,
        SpecApp::Mcf,
        SpecApp::Milc,
        SpecApp::Omnetpp,
        SpecApp::Povray,
        SpecApp::Soplex,
        SpecApp::Xalan,
    ];

    /// The ten applications ranked in Fig. 4 of the paper.
    pub const FIG4_APPS: [SpecApp; 10] = [
        SpecApp::Astar,
        SpecApp::Blockie,
        SpecApp::Bzip,
        SpecApp::Gcc,
        SpecApp::Lbm,
        SpecApp::Mcf,
        SpecApp::Milc,
        SpecApp::Omnetpp,
        SpecApp::Soplex,
        SpecApp::Xalan,
    ];

    /// The eight applications measured in Fig. 9 of the paper.
    pub const FIG9_APPS: [SpecApp; 8] = [
        SpecApp::Mcf,
        SpecApp::Soplex,
        SpecApp::Milc,
        SpecApp::Omnetpp,
        SpecApp::Xalan,
        SpecApp::Astar,
        SpecApp::Bzip,
        SpecApp::Lbm,
    ];

    /// The application's lowercase name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SpecApp::Astar => "astar",
            SpecApp::Blockie => "blockie",
            SpecApp::Bzip => "bzip",
            SpecApp::Gcc => "gcc",
            SpecApp::Hmmer => "hmmer",
            SpecApp::Lbm => "lbm",
            SpecApp::Mcf => "mcf",
            SpecApp::Milc => "milc",
            SpecApp::Omnetpp => "omnetpp",
            SpecApp::Povray => "povray",
            SpecApp::Soplex => "soplex",
            SpecApp::Xalan => "xalan",
        }
    }

    /// The sensitive VMs of Table 2 (`vsen1..3` = gcc, omnetpp, soplex).
    pub const SENSITIVE_VMS: [SpecApp; 3] = [SpecApp::Gcc, SpecApp::Omnetpp, SpecApp::Soplex];

    /// The disruptive VMs of Table 2 (`vdis1..3` = lbm, blockie, mcf).
    pub const DISRUPTIVE_VMS: [SpecApp; 3] = [SpecApp::Lbm, SpecApp::Blockie, SpecApp::Mcf];

    /// The real-aggressiveness order `o1` reported in Section 4.2
    /// (most aggressive first).
    pub const PAPER_AGGRESSIVENESS_ORDER: [SpecApp; 10] = [
        SpecApp::Blockie,
        SpecApp::Lbm,
        SpecApp::Mcf,
        SpecApp::Soplex,
        SpecApp::Milc,
        SpecApp::Omnetpp,
        SpecApp::Gcc,
        SpecApp::Xalan,
        SpecApp::Astar,
        SpecApp::Bzip,
    ];

    /// The raw-LLCM order `o2` reported in Section 4.2.
    pub const PAPER_LLCM_ORDER: [SpecApp; 10] = [
        SpecApp::Milc,
        SpecApp::Lbm,
        SpecApp::Soplex,
        SpecApp::Mcf,
        SpecApp::Blockie,
        SpecApp::Gcc,
        SpecApp::Omnetpp,
        SpecApp::Xalan,
        SpecApp::Astar,
        SpecApp::Bzip,
    ];

    /// The Equation-1 order `o3` reported in Section 4.2.
    pub const PAPER_EQUATION1_ORDER: [SpecApp; 10] = [
        SpecApp::Lbm,
        SpecApp::Blockie,
        SpecApp::Milc,
        SpecApp::Mcf,
        SpecApp::Soplex,
        SpecApp::Gcc,
        SpecApp::Omnetpp,
        SpecApp::Xalan,
        SpecApp::Astar,
        SpecApp::Bzip,
    ];

    /// The memory-behaviour profile of the application at the scale of the
    /// paper's machine (Table 1); working sets shrink with the machine when a
    /// scaled machine is used (see [`SpecWorkload::new`]).
    pub fn profile(&self) -> SpecProfile {
        // Working-set sizes and intensities are chosen from the applications'
        // published memory characterisation so the paper's sensitivity and
        // aggressiveness orderings are preserved; absolute values are not
        // meant to match the SPEC reference inputs byte for byte.
        match self {
            SpecApp::Povray => SpecProfile {
                working_set_bytes: 128 * 1024,
                hot_set_bytes: 64 * 1024,
                hot_fraction: 0.92,
                mem_fraction: 0.10,
                streaming_fraction: 0.0,
                mem_parallelism: 1.0,
                write_fraction: 0.2,
                compute_cycles: 1,
                cold_fraction: 0.0005,
            },
            SpecApp::Hmmer => SpecProfile {
                working_set_bytes: 192 * 1024,
                hot_set_bytes: 96 * 1024,
                hot_fraction: 0.9,
                mem_fraction: 0.22,
                streaming_fraction: 0.2,
                mem_parallelism: 2.0,
                write_fraction: 0.2,
                compute_cycles: 1,
                cold_fraction: 0.002,
            },
            SpecApp::Bzip => SpecProfile {
                working_set_bytes: 1536 * 1024,
                hot_set_bytes: 256 * 1024,
                hot_fraction: 0.75,
                mem_fraction: 0.25,
                streaming_fraction: 0.3,
                mem_parallelism: 2.0,
                write_fraction: 0.3,
                compute_cycles: 1,
                cold_fraction: 0.004,
            },
            SpecApp::Astar => SpecProfile {
                working_set_bytes: 2 * 1024 * 1024,
                hot_set_bytes: 512 * 1024,
                hot_fraction: 0.72,
                mem_fraction: 0.30,
                streaming_fraction: 0.1,
                mem_parallelism: 1.0,
                write_fraction: 0.2,
                compute_cycles: 1,
                cold_fraction: 0.003,
            },
            SpecApp::Xalan => SpecProfile {
                working_set_bytes: 3 * 1024 * 1024,
                hot_set_bytes: 512 * 1024,
                hot_fraction: 0.68,
                mem_fraction: 0.30,
                streaming_fraction: 0.2,
                mem_parallelism: 1.5,
                write_fraction: 0.2,
                compute_cycles: 1,
                cold_fraction: 0.004,
            },
            SpecApp::Gcc => SpecProfile {
                working_set_bytes: 5 * 1024 * 1024,
                hot_set_bytes: 1024 * 1024,
                hot_fraction: 0.60,
                mem_fraction: 0.35,
                streaming_fraction: 0.3,
                mem_parallelism: 1.5,
                write_fraction: 0.25,
                compute_cycles: 1,
                cold_fraction: 0.005,
            },
            SpecApp::Omnetpp => SpecProfile {
                working_set_bytes: 8 * 1024 * 1024,
                hot_set_bytes: 2 * 1024 * 1024,
                hot_fraction: 0.58,
                mem_fraction: 0.35,
                streaming_fraction: 0.1,
                mem_parallelism: 1.2,
                write_fraction: 0.3,
                compute_cycles: 1,
                cold_fraction: 0.006,
            },
            SpecApp::Soplex => SpecProfile {
                working_set_bytes: 16 * 1024 * 1024,
                hot_set_bytes: 2 * 1024 * 1024,
                hot_fraction: 0.55,
                mem_fraction: 0.38,
                streaming_fraction: 0.4,
                mem_parallelism: 2.2,
                write_fraction: 0.2,
                compute_cycles: 1,
                cold_fraction: 0.004,
            },
            SpecApp::Milc => SpecProfile {
                working_set_bytes: 48 * 1024 * 1024,
                hot_set_bytes: 4 * 1024 * 1024,
                hot_fraction: 0.25,
                mem_fraction: 0.60,
                streaming_fraction: 0.3,
                mem_parallelism: 1.6,
                write_fraction: 0.3,
                compute_cycles: 1,
                cold_fraction: 0.002,
            },
            SpecApp::Mcf => SpecProfile {
                working_set_bytes: 40 * 1024 * 1024,
                hot_set_bytes: 4 * 1024 * 1024,
                hot_fraction: 0.35,
                mem_fraction: 0.45,
                streaming_fraction: 0.1,
                mem_parallelism: 1.8,
                write_fraction: 0.2,
                compute_cycles: 1,
                cold_fraction: 0.002,
            },
            SpecApp::Lbm => SpecProfile {
                working_set_bytes: 64 * 1024 * 1024,
                hot_set_bytes: 2 * 1024 * 1024,
                hot_fraction: 0.15,
                mem_fraction: 0.40,
                streaming_fraction: 0.9,
                mem_parallelism: 8.0,
                write_fraction: 0.4,
                compute_cycles: 1,
                cold_fraction: 0.001,
            },
            SpecApp::Blockie => SpecProfile {
                working_set_bytes: 32 * 1024 * 1024,
                hot_set_bytes: 1024 * 1024,
                hot_fraction: 0.08,
                mem_fraction: 0.38,
                streaming_fraction: 0.95,
                mem_parallelism: 10.0,
                write_fraction: 0.45,
                compute_cycles: 1,
                cold_fraction: 0.001,
            },
        }
    }
}

impl fmt::Display for SpecApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Memory-behaviour parameters of a modelled application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecProfile {
    /// Total footprint at paper-machine scale, in bytes.
    pub working_set_bytes: u64,
    /// Size of the frequently reused subset, in bytes.
    pub hot_set_bytes: u64,
    /// Probability that a memory access targets the hot subset.
    pub hot_fraction: f64,
    /// Probability that an op is a memory access (the rest is computation).
    pub mem_fraction: f64,
    /// Probability that a cold access continues the sequential scan instead
    /// of jumping to a random line of the working set.
    pub streaming_fraction: f64,
    /// Average number of overlapping outstanding misses.
    pub mem_parallelism: f64,
    /// Probability that a memory access is a store.
    pub write_fraction: f64,
    /// Cycles burnt by one compute op.
    pub compute_cycles: u32,
    /// Fraction of memory accesses that touch never-reused data (compulsory
    /// misses: input parsing, allocation, paging). Gives every application a
    /// small, realistic background LLC-miss rate even once its working set
    /// is cache-resident.
    pub cold_fraction: f64,
}

/// Base address of the never-reused "cold" region touched by compulsory
/// misses (disjoint from every working set).
pub const COLD_REGION_BASE: u64 = 1 << 40;

/// The op classes a [`SpecWorkload`] draws from. The seed implementation
/// reached these through a chain of conditional `gen_bool` draws; the chain
/// is a categorical distribution in disguise, so the hot path now picks the
/// class with a single uniform draw against precomputed cumulative
/// thresholds (one more draw picks the line when the class needs one).
#[derive(Debug, Clone, Copy)]
struct OpClassThresholds {
    /// P(compute).
    compute: u64,
    /// P(compute) + P(cold).
    cold: u64,
    /// ... + P(hot load).
    hot_load: u64,
    /// ... + P(hot store).
    hot_store: u64,
    /// ... + P(stream load).
    stream_load: u64,
    /// ... + P(stream store).
    stream_store: u64,
    /// ... + P(random load); the remainder is a random store.
    random_load: u64,
}

impl OpClassThresholds {
    fn from_profile(p: &SpecProfile) -> Self {
        let mem = p.mem_fraction.clamp(0.0, 1.0);
        let cold = mem * p.cold_fraction.clamp(0.0, 1.0);
        let warm = mem - cold;
        let hot = warm * p.hot_fraction.clamp(0.0, 1.0);
        let stream = (warm - hot) * p.streaming_fraction.clamp(0.0, 1.0);
        let random = warm - hot - stream;
        let write = p.write_fraction.clamp(0.0, 1.0);
        let scale = |cumulative: f64| -> u64 {
            // Map a cumulative probability to a u64 threshold; 1.0 maps to
            // u64::MAX so a uniform draw is always below it.
            (cumulative.clamp(0.0, 1.0) * u64::MAX as f64) as u64
        };
        let compute = 1.0 - mem;
        OpClassThresholds {
            compute: scale(compute),
            cold: scale(compute + cold),
            hot_load: scale(compute + cold + hot * (1.0 - write)),
            hot_store: scale(compute + cold + hot),
            stream_load: scale(compute + cold + hot + stream * (1.0 - write)),
            stream_store: scale(compute + cold + hot + stream),
            random_load: scale(compute + cold + hot + stream + random * (1.0 - write)),
        }
    }
}

/// A running instance of a modelled application.
#[derive(Debug, Clone)]
pub struct SpecWorkload {
    app: SpecApp,
    profile: SpecProfile,
    thresholds: OpClassThresholds,
    ws_lines: u64,
    hot_lines: u64,
    scan_pos: u64,
    cold_pos: u64,
    rng: SmallRng,
}

impl SpecWorkload {
    /// Instantiates `app` on a machine scaled down by `scale`
    /// (use `1` for the paper-scale machine).
    ///
    /// The footprint scales with the machine so that the ratio between the
    /// application's working set and the cache capacities — the quantity that
    /// decides sensitivity and aggressiveness — is preserved.
    pub fn new(app: SpecApp, scale: u64, seed: u64) -> Self {
        let profile = app.profile();
        let scale = scale.max(1);
        let ws_lines = (profile.working_set_bytes / scale / LINE_SIZE).max(4);
        let hot_lines = (profile.hot_set_bytes / scale / LINE_SIZE)
            .max(1)
            .min(ws_lines);
        SpecWorkload {
            app,
            thresholds: OpClassThresholds::from_profile(&profile),
            profile,
            ws_lines,
            hot_lines,
            scan_pos: 0,
            cold_pos: 0,
            rng: SmallRng::seed_from_u64(seed ^ (app as u64) << 32),
        }
    }

    #[inline]
    fn line_in(&mut self, lines: u64) -> u64 {
        // Lemire multiply-shift draw in [0, lines).
        ((u128::from(self.rng.next_u64()) * u128::from(lines)) >> 64) as u64
    }

    /// The modelled application.
    pub fn app(&self) -> SpecApp {
        self.app
    }

    /// The profile driving this instance.
    pub fn profile(&self) -> &SpecProfile {
        &self.profile
    }

    /// The working-set category of this instance on `machine`.
    pub fn category(&self, machine: &MachineConfig) -> Category {
        Category::classify(self.working_set_bytes(), machine)
    }
}

impl Workload for SpecWorkload {
    #[inline]
    fn next_op(&mut self) -> Op {
        let t = self.thresholds;
        let draw = self.rng.next_u64();
        if draw < t.compute {
            return Op::Compute {
                cycles: self.profile.compute_cycles,
            };
        }
        if draw < t.cold {
            // Compulsory miss: touch a line that will never be reused.
            let addr = COLD_REGION_BASE + self.cold_pos * LINE_SIZE;
            self.cold_pos += 1;
            return Op::Load { addr };
        }
        if draw < t.hot_store {
            let addr = self.line_in(self.hot_lines) * LINE_SIZE;
            return if draw < t.hot_load {
                Op::Load { addr }
            } else {
                Op::Store { addr }
            };
        }
        if draw < t.stream_store {
            let addr = self.scan_pos * LINE_SIZE;
            self.scan_pos += 1;
            if self.scan_pos == self.ws_lines {
                self.scan_pos = 0;
            }
            return if draw < t.stream_load {
                Op::Load { addr }
            } else {
                Op::Store { addr }
            };
        }
        let addr = self.line_in(self.ws_lines) * LINE_SIZE;
        if draw < t.random_load {
            Op::Load { addr }
        } else {
            Op::Store { addr }
        }
    }

    fn name(&self) -> &str {
        self.app.name()
    }

    fn working_set_bytes(&self) -> u64 {
        self.ws_lines * LINE_SIZE
    }

    fn mem_parallelism(&self) -> f64 {
        self.profile.mem_parallelism
    }

    fn reset(&mut self) {
        self.scan_pos = 0;
        self.cold_pos = 0;
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_has_a_valid_profile() {
        for app in SpecApp::ALL {
            let p = app.profile();
            assert!(p.working_set_bytes >= p.hot_set_bytes, "{app}");
            assert!((0.0..=1.0).contains(&p.hot_fraction), "{app}");
            assert!((0.0..=1.0).contains(&p.mem_fraction), "{app}");
            assert!((0.0..=1.0).contains(&p.streaming_fraction), "{app}");
            assert!((0.0..=1.0).contains(&p.write_fraction), "{app}");
            assert!(p.mem_parallelism >= 1.0, "{app}");
            assert!(p.compute_cycles >= 1, "{app}");
            assert!((0.0..=0.05).contains(&p.cold_fraction), "{app}");
        }
    }

    #[test]
    fn table2_vm_mapping_matches_the_paper() {
        assert_eq!(
            SpecApp::SENSITIVE_VMS.map(|a| a.name()),
            ["gcc", "omnetpp", "soplex"]
        );
        assert_eq!(
            SpecApp::DISRUPTIVE_VMS.map(|a| a.name()),
            ["lbm", "blockie", "mcf"]
        );
    }

    #[test]
    fn paper_orders_contain_the_same_ten_apps() {
        let mut o1 = SpecApp::PAPER_AGGRESSIVENESS_ORDER.to_vec();
        let mut o2 = SpecApp::PAPER_LLCM_ORDER.to_vec();
        let mut o3 = SpecApp::PAPER_EQUATION1_ORDER.to_vec();
        let mut fig4 = SpecApp::FIG4_APPS.to_vec();
        o1.sort();
        o2.sort();
        o3.sort();
        fig4.sort();
        assert_eq!(o1, fig4);
        assert_eq!(o2, fig4);
        assert_eq!(o3, fig4);
    }

    #[test]
    fn sensitive_vms_fit_the_llc_or_barely_exceed_it() {
        let machine = MachineConfig::paper_machine();
        let gcc = SpecWorkload::new(SpecApp::Gcc, 1, 1);
        let omnetpp = SpecWorkload::new(SpecApp::Omnetpp, 1, 1);
        assert_eq!(gcc.category(&machine), Category::C2);
        assert_eq!(omnetpp.category(&machine), Category::C2);
        let soplex = SpecWorkload::new(SpecApp::Soplex, 1, 1);
        assert_eq!(soplex.category(&machine), Category::C3);
    }

    #[test]
    fn cpu_bound_apps_are_c1() {
        let machine = MachineConfig::paper_machine();
        for app in [SpecApp::Povray, SpecApp::Hmmer] {
            let wl = SpecWorkload::new(app, 1, 1);
            assert_eq!(wl.category(&machine), Category::C1, "{app}");
        }
    }

    #[test]
    fn disruptors_exceed_the_llc() {
        let machine = MachineConfig::paper_machine();
        for app in SpecApp::DISRUPTIVE_VMS {
            let wl = SpecWorkload::new(app, 1, 1);
            assert_eq!(wl.category(&machine), Category::C3, "{app}");
        }
    }

    #[test]
    fn scaling_preserves_categories() {
        // Categories must be invariant when machine and workloads scale by
        // the same factor: this is the property that justifies running the
        // experiments on scaled-down machines.
        for scale in [8u64, 16, 64] {
            let machine = MachineConfig::scaled_paper_machine(scale);
            let paper_machine = MachineConfig::paper_machine();
            for app in SpecApp::ALL {
                let scaled = SpecWorkload::new(app, scale, 1);
                let full = SpecWorkload::new(app, 1, 1);
                assert_eq!(
                    scaled.category(&machine),
                    full.category(&paper_machine),
                    "{app} at scale {scale}"
                );
            }
        }
    }

    #[test]
    fn accesses_stay_within_the_working_set_or_the_cold_region() {
        let mut wl = SpecWorkload::new(SpecApp::Gcc, 16, 3);
        let ws = wl.working_set_bytes();
        let mut cold = 0u64;
        for _ in 0..20_000 {
            if let Some(addr) = wl.next_op().addr() {
                if addr >= COLD_REGION_BASE {
                    cold += 1;
                } else {
                    assert!(addr < ws);
                }
            }
        }
        // Compulsory misses exist but stay rare.
        assert!(cold > 0);
        assert!(cold < 200);
    }

    #[test]
    fn memory_fraction_is_respected() {
        let mut wl = SpecWorkload::new(SpecApp::Milc, 16, 3);
        let mut mem = 0;
        let total = 50_000;
        for _ in 0..total {
            if wl.next_op().addr().is_some() {
                mem += 1;
            }
        }
        let fraction = mem as f64 / total as f64;
        assert!((fraction - 0.60).abs() < 0.02, "measured {fraction}");
    }

    #[test]
    fn polluters_have_high_memory_level_parallelism() {
        let lbm = SpecWorkload::new(SpecApp::Lbm, 16, 1);
        let blockie = SpecWorkload::new(SpecApp::Blockie, 16, 1);
        let mcf = SpecWorkload::new(SpecApp::Mcf, 16, 1);
        assert!(lbm.mem_parallelism() >= 4.0);
        assert!(blockie.mem_parallelism() >= 4.0);
        assert!(
            mcf.mem_parallelism() < 4.0,
            "mcf is latency-bound pointer chasing"
        );
    }

    #[test]
    fn determinism_per_seed_and_divergence_across_seeds() {
        let mut a = SpecWorkload::new(SpecApp::Soplex, 16, 5);
        let mut b = SpecWorkload::new(SpecApp::Soplex, 16, 5);
        let mut c = SpecWorkload::new(SpecApp::Soplex, 16, 6);
        let sa: Vec<Op> = (0..200).map(|_| a.next_op()).collect();
        let sb: Vec<Op> = (0..200).map(|_| b.next_op()).collect();
        let sc: Vec<Op> = (0..200).map(|_| c.next_op()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(SpecApp::Xalan.to_string(), "xalan");
        assert_eq!(SpecWorkload::new(SpecApp::Bzip, 16, 0).name(), "bzip");
        assert_eq!(SpecApp::ALL.len(), 12);
        assert_eq!(SpecApp::FIG9_APPS.len(), 8);
    }

    #[test]
    fn hot_set_never_exceeds_working_set_after_scaling() {
        for app in SpecApp::ALL {
            let wl = SpecWorkload::new(app, 1_000_000, 0);
            assert!(wl.hot_lines <= wl.ws_lines, "{app}");
            assert!(wl.ws_lines >= 4, "{app}");
        }
    }
}
