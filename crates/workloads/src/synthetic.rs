//! Synthetic kernels: streaming scans and uniform random accesses.
//!
//! These model the *disruptive* side of the paper's experiments. A streaming
//! scan with high memory-level parallelism is the archetypal LLC polluter
//! (lbm, blockie); a uniform random access pattern over a large footprint
//! models pointer-heavy polluters (mcf).

use kyoto_sim::workload::{Op, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cache-line size assumed by the workload models.
const LINE_SIZE: u64 = 64;

/// Maps a probability to a `u64` draw threshold (1.0 saturates so a uniform
/// draw is always below it).
fn threshold(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64
}

/// A sequential streaming scan over a working set, wrapping around forever.
///
/// Every access touches a new cache line until the scan wraps, which gives
/// the maximum possible eviction pressure per unit of time. Memory-level
/// parallelism is high (hardware prefetchers and independent loads), making
/// it an aggressive polluter like `lbm` or `blockie`.
#[derive(Debug, Clone)]
pub struct Streaming {
    name: String,
    lines: u64,
    position: u64,
    mem_fraction: f64,
    mem_parallelism: f64,
    write_fraction: f64,
    /// Cumulative draw thresholds: below `store_t` → store, below `mem_t` →
    /// load, else compute. One uniform draw decides the whole op.
    store_t: u64,
    mem_t: u64,
    rng: SmallRng,
}

impl Streaming {
    /// Creates a streaming scan over `working_set_bytes`.
    pub fn new(working_set_bytes: u64, seed: u64) -> Self {
        let mut streaming = Streaming {
            name: "streaming".to_string(),
            lines: (working_set_bytes / LINE_SIZE).max(1),
            position: 0,
            mem_fraction: 0.6,
            mem_parallelism: 8.0,
            write_fraction: 0.3,
            store_t: 0,
            mem_t: 0,
            rng: SmallRng::seed_from_u64(seed),
        };
        streaming.rebuild_thresholds();
        streaming
    }

    fn rebuild_thresholds(&mut self) {
        self.store_t = threshold(self.mem_fraction * self.write_fraction);
        self.mem_t = threshold(self.mem_fraction);
    }

    /// Renames the workload (used to label `v^i_dis` VMs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the fraction of ops that are memory accesses (rest is compute).
    pub fn with_mem_fraction(mut self, fraction: f64) -> Self {
        self.mem_fraction = fraction.clamp(0.0, 1.0);
        self.rebuild_thresholds();
        self
    }

    /// Sets the declared memory-level parallelism.
    pub fn with_mem_parallelism(mut self, mlp: f64) -> Self {
        self.mem_parallelism = mlp.max(1.0);
        self
    }
}

impl Workload for Streaming {
    fn next_op(&mut self) -> Op {
        let draw = self.rng.next_u64();
        if draw < self.mem_t {
            let addr = self.position * LINE_SIZE;
            self.position += 1;
            if self.position == self.lines {
                self.position = 0;
            }
            if draw < self.store_t {
                Op::Store { addr }
            } else {
                Op::Load { addr }
            }
        } else {
            Op::Compute { cycles: 1 }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn working_set_bytes(&self) -> u64 {
        self.lines * LINE_SIZE
    }

    fn mem_parallelism(&self) -> f64 {
        self.mem_parallelism
    }

    fn reset(&mut self) {
        self.position = 0;
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

/// Uniform random accesses over a working set.
///
/// Models pointer-heavy applications with poor locality (mcf-like): every
/// access is equally likely to touch any line of the footprint, and
/// dependent chains limit memory-level parallelism.
#[derive(Debug, Clone)]
pub struct RandomAccess {
    name: String,
    lines: u64,
    mem_fraction: f64,
    mem_parallelism: f64,
    mem_t: u64,
    rng: SmallRng,
}

impl RandomAccess {
    /// Creates a uniform random access pattern over `working_set_bytes`.
    pub fn new(working_set_bytes: u64, seed: u64) -> Self {
        RandomAccess {
            name: "random-access".to_string(),
            lines: (working_set_bytes / LINE_SIZE).max(1),
            mem_fraction: 0.5,
            mem_parallelism: 1.5,
            mem_t: threshold(0.5),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Renames the workload.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the fraction of ops that are memory accesses.
    pub fn with_mem_fraction(mut self, fraction: f64) -> Self {
        self.mem_fraction = fraction.clamp(0.0, 1.0);
        self.mem_t = threshold(self.mem_fraction);
        self
    }

    /// Sets the declared memory-level parallelism.
    pub fn with_mem_parallelism(mut self, mlp: f64) -> Self {
        self.mem_parallelism = mlp.max(1.0);
        self
    }
}

impl Workload for RandomAccess {
    fn next_op(&mut self) -> Op {
        if self.rng.next_u64() < self.mem_t {
            let line = ((u128::from(self.rng.next_u64()) * u128::from(self.lines)) >> 64) as u64;
            Op::Load {
                addr: line * LINE_SIZE,
            }
        } else {
            Op::Compute { cycles: 1 }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn working_set_bytes(&self) -> u64 {
        self.lines * LINE_SIZE
    }

    fn mem_parallelism(&self) -> f64 {
        self.mem_parallelism
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_touches_consecutive_lines() {
        let mut stream = Streaming::new(1024 * 1024, 1).with_mem_fraction(1.0);
        let mut last = None;
        for _ in 0..100 {
            let addr = stream.next_op().addr().unwrap();
            if let Some(prev) = last {
                assert_eq!(addr, prev + LINE_SIZE);
            }
            last = Some(addr);
        }
    }

    #[test]
    fn streaming_wraps_around_the_working_set() {
        let mut stream = Streaming::new(4 * LINE_SIZE, 1).with_mem_fraction(1.0);
        let addrs: Vec<u64> = (0..8).map(|_| stream.next_op().addr().unwrap()).collect();
        assert_eq!(addrs[0], addrs[4]);
        assert!(addrs.iter().all(|&a| a < 4 * LINE_SIZE));
    }

    #[test]
    fn streaming_mixes_loads_stores_and_compute() {
        let mut stream = Streaming::new(1024 * 1024, 2);
        let mut loads = 0;
        let mut stores = 0;
        let mut computes = 0;
        for _ in 0..10_000 {
            match stream.next_op() {
                Op::Load { .. } => loads += 1,
                Op::Store { .. } => stores += 1,
                Op::Compute { .. } => computes += 1,
            }
        }
        assert!(loads > 0 && stores > 0 && computes > 0);
        let mem_fraction = (loads + stores) as f64 / 10_000.0;
        assert!((mem_fraction - 0.6).abs() < 0.05);
    }

    #[test]
    fn streaming_is_deterministic_per_seed() {
        let mut a = Streaming::new(1 << 20, 9);
        let mut b = Streaming::new(1 << 20, 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn random_access_stays_in_bounds_and_covers_the_set() {
        let ws = 64 * LINE_SIZE;
        let mut ra = RandomAccess::new(ws, 3).with_mem_fraction(1.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let addr = ra.next_op().addr().unwrap();
            assert!(addr < ws);
            seen.insert(addr / LINE_SIZE);
        }
        assert!(
            seen.len() > 50,
            "uniform accesses should cover most of the 64 lines"
        );
    }

    #[test]
    fn builders_clamp_their_arguments() {
        let s = Streaming::new(1 << 20, 1)
            .with_mem_fraction(2.0)
            .with_mem_parallelism(0.1);
        assert_eq!(s.mem_parallelism(), 1.0);
        let r = RandomAccess::new(1 << 20, 1).with_mem_fraction(-1.0);
        assert_eq!(r.mem_fraction, 0.0);
    }

    #[test]
    fn names_can_be_overridden() {
        let s = Streaming::new(1 << 20, 1).named("v2dis");
        assert_eq!(s.name(), "v2dis");
        let r = RandomAccess::new(1 << 20, 1).named("mcf-like");
        assert_eq!(r.name(), "mcf-like");
    }

    #[test]
    fn reset_restarts_the_stream() {
        let mut s = Streaming::new(1 << 20, 5).with_mem_fraction(1.0);
        let first_addr = s.next_op().addr().unwrap();
        for _ in 0..10 {
            s.next_op();
        }
        s.reset();
        assert_eq!(s.next_op().addr().unwrap(), first_addr);
    }
}
