//! The pointer-chase micro benchmark (Section 2.2.2 of the paper).
//!
//! "A micro benchmark application creates an array of elements whose size
//! corresponds to a specific working set size. Elements are randomly chained
//! into a circular linked list. The program walks through the list by
//! following the link between elements."
//!
//! Every list element occupies one cache line, the chain visits every
//! element exactly once per cycle (a random Hamiltonian cycle), and each hop
//! is a dependent load — so there is no memory-level parallelism, exactly
//! like Drepper's original benchmark.

use crate::category::Category;
use kyoto_sim::topology::MachineConfig;
use kyoto_sim::workload::{Op, Workload};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cache-line size assumed by the workload models.
pub const LINE_SIZE: u64 = 64;

/// A circular-linked-list pointer chase over a fixed working set.
#[derive(Debug, Clone)]
pub struct PointerChase {
    name: String,
    /// next_line[i] = index of the line visited after line i.
    next_line: Vec<u32>,
    current: u32,
    working_set_bytes: u64,
    compute_per_access: u32,
    pending_compute: bool,
}

impl PointerChase {
    /// Builds a pointer chase over `working_set_bytes` of memory.
    ///
    /// `seed` makes the random chaining deterministic. The working set is
    /// rounded up to at least one cache line.
    pub fn new(working_set_bytes: u64, seed: u64) -> Self {
        Self::with_compute(working_set_bytes, seed, 1)
    }

    /// Builds a pointer chase that additionally burns `compute_per_access`
    /// cycles of computation between consecutive hops (models the work done
    /// on each visited element).
    pub fn with_compute(working_set_bytes: u64, seed: u64, compute_per_access: u32) -> Self {
        let lines = (working_set_bytes / LINE_SIZE).max(1) as u32;
        let mut rng = SmallRng::seed_from_u64(seed);
        // Build a random Hamiltonian cycle: shuffle the visit order and link
        // each line to its successor in that order.
        let mut order: Vec<u32> = (0..lines).collect();
        order.shuffle(&mut rng);
        let mut next_line = vec![0u32; lines as usize];
        for i in 0..lines as usize {
            let from = order[i];
            let to = order[(i + 1) % lines as usize];
            next_line[from as usize] = to;
        }
        PointerChase {
            name: format!("pointer-chase-{}", human_size(working_set_bytes)),
            next_line,
            current: order[0],
            working_set_bytes: u64::from(lines) * LINE_SIZE,
            compute_per_access,
            pending_compute: false,
        }
    }

    /// A representative VM of `category` on `machine` (the paper's `v^i_rep`):
    /// a pointer chase whose working set falls squarely inside the category.
    pub fn representative(category: Category, machine: &MachineConfig, seed: u64) -> Self {
        let ws = category.representative_working_set(machine);
        let mut chase = Self::new(ws, seed);
        chase.name = format!("v{}rep", category.index());
        chase
    }

    /// Number of cache lines in the chase.
    pub fn num_lines(&self) -> usize {
        self.next_line.len()
    }
}

impl Workload for PointerChase {
    fn next_op(&mut self) -> Op {
        // Alternate between the dependent load and the per-element work (if
        // any): load, compute, load, compute, ...
        if self.pending_compute {
            self.pending_compute = false;
            return Op::Compute {
                cycles: self.compute_per_access,
            };
        }
        let addr = u64::from(self.current) * LINE_SIZE;
        self.current = self.next_line[self.current as usize];
        if self.compute_per_access > 1 {
            self.pending_compute = true;
        }
        Op::Load { addr }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn working_set_bytes(&self) -> u64 {
        self.working_set_bytes
    }

    fn mem_parallelism(&self) -> f64 {
        // Dependent loads: each hop needs the previous element's contents.
        1.0
    }

    fn reset(&mut self) {
        self.current = 0;
        self.pending_compute = false;
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

/// A self-check walk utility: returns how many hops it takes to come back to
/// the starting element (must equal the number of lines for a correct
/// circular chain). Exposed for tests and examples.
pub fn cycle_length(chase: &PointerChase) -> usize {
    let start = chase.current;
    let mut pos = chase.next_line[start as usize];
    let mut hops = 1;
    while pos != start {
        pos = chase.next_line[pos as usize];
        hops += 1;
        if hops > chase.next_line.len() + 1 {
            break;
        }
    }
    hops
}

fn human_size(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{}MiB", bytes / (1024 * 1024))
    } else if bytes >= 1024 {
        format!("{}KiB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// A representative VM of `category` as a boxed workload (the paper's
/// `v^i_rep`).
///
/// C1 and C2 use the circular pointer chase directly. A pure cyclic chase
/// whose working set exceeds the LLC has a reuse distance larger than the
/// cache and therefore never hits, which would make a C3 representative
/// artificially insensitive to contention; real C3 applications retain
/// partial locality, so the C3 representative uses uniformly random accesses
/// over its (LLC-exceeding) working set instead — a fraction of them hit the
/// LLC when run alone and are lost under contention, like the paper's
/// `v3rep`.
pub fn representative(
    category: Category,
    machine: &MachineConfig,
    seed: u64,
) -> Box<dyn kyoto_sim::workload::Workload> {
    match category {
        Category::C1 | Category::C2 => {
            Box::new(PointerChase::representative(category, machine, seed))
        }
        Category::C3 => Box::new(
            crate::synthetic::RandomAccess::new(category.representative_working_set(machine), seed)
                .with_mem_fraction(0.85)
                .with_mem_parallelism(1.0)
                .named("v3rep"),
        ),
    }
}

/// Convenience: a disruptive VM of `category` on `machine` (the paper's
/// `v^i_dis`): a streaming scan sized for the category, which maximises the
/// eviction pressure it exerts on that level of the hierarchy.
pub fn disruptive(
    category: Category,
    machine: &MachineConfig,
    seed: u64,
) -> crate::synthetic::Streaming {
    let ws = match category {
        // A C1 disruptor thrashes the ILC only.
        Category::C1 => machine.l1d.size_bytes + machine.l2.size_bytes,
        // A C2 disruptor streams over an LLC-sized footprint.
        Category::C2 => machine.llc.size_bytes,
        // A C3 disruptor streams over several LLCs worth of data.
        Category::C3 => machine.llc.size_bytes * 4,
    };
    crate::synthetic::Streaming::new(ws, seed).named(format!("v{}dis", category.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn chain_is_a_single_cycle_visiting_every_line() {
        for &ws in &[64u64, 4096, 64 * 1024, 1024 * 1024] {
            let chase = PointerChase::new(ws, 7);
            assert_eq!(cycle_length(&chase), chase.num_lines(), "ws = {ws}");
        }
    }

    #[test]
    fn working_set_rounds_to_lines() {
        let chase = PointerChase::new(100, 1);
        assert_eq!(chase.working_set_bytes(), 64);
        assert_eq!(chase.num_lines(), 1);
        let chase = PointerChase::new(0, 1);
        assert_eq!(chase.num_lines(), 1);
    }

    #[test]
    fn all_addresses_stay_inside_the_working_set() {
        let mut chase = PointerChase::new(16 * 1024, 3);
        for _ in 0..10_000 {
            match chase.next_op() {
                Op::Load { addr } => assert!(addr < 16 * 1024),
                other => panic!("pointer chase should only emit loads, got {other:?}"),
            }
        }
    }

    #[test]
    fn chase_visits_every_line_once_per_cycle() {
        let mut chase = PointerChase::new(64 * 64, 11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..chase.num_lines() {
            if let Op::Load { addr } = chase.next_op() {
                seen.insert(addr / LINE_SIZE);
            }
        }
        assert_eq!(seen.len(), chase.num_lines());
    }

    #[test]
    fn same_seed_same_chain_different_seed_probably_different() {
        let mut a = PointerChase::new(4096, 5);
        let mut b = PointerChase::new(4096, 5);
        let mut c = PointerChase::new(4096, 6);
        let seq_a: Vec<Op> = (0..50).map(|_| a.next_op()).collect();
        let seq_b: Vec<Op> = (0..50).map(|_| b.next_op()).collect();
        let seq_c: Vec<Op> = (0..50).map(|_| c.next_op()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn representative_workloads_fall_in_their_category() {
        let machine = MachineConfig::scaled_paper_machine(16);
        for category in Category::ALL {
            let rep = PointerChase::representative(category, &machine, 1);
            assert_eq!(
                Category::classify(rep.working_set_bytes(), &machine),
                category
            );
            assert_eq!(rep.name(), format!("v{}rep", category.index()));
        }
    }

    #[test]
    fn disruptive_workloads_have_category_sized_footprints() {
        let machine = MachineConfig::scaled_paper_machine(16);
        let d1 = disruptive(Category::C1, &machine, 1);
        let d2 = disruptive(Category::C2, &machine, 1);
        let d3 = disruptive(Category::C3, &machine, 1);
        assert!(d1.working_set_bytes() < d2.working_set_bytes());
        assert!(d2.working_set_bytes() < d3.working_set_bytes());
        assert_eq!(d2.working_set_bytes(), machine.llc.size_bytes);
    }

    #[test]
    fn pointer_chase_is_latency_bound() {
        let chase = PointerChase::new(1024 * 1024, 1);
        assert_eq!(chase.mem_parallelism(), 1.0);
    }

    #[test]
    fn reset_restarts_from_line_zero() {
        let mut chase = PointerChase::new(4096, 9);
        let _ = chase.next_op();
        chase.reset();
        assert_eq!(
            chase.next_op().addr().map(|a| a / LINE_SIZE),
            Some(chase.next_line_of_zero())
        );
    }

    impl PointerChase {
        fn next_line_of_zero(&self) -> u64 {
            // After reset the current line is 0, so the first emitted address
            // is line 0 itself; this helper documents that expectation.
            0
        }
    }

    #[test]
    fn seeds_do_not_bias_first_elements() {
        // Smoke check that shuffling uses the seed: over many seeds the first
        // visited line should not always be the same.
        let firsts: std::collections::HashSet<u64> = (0..20u64)
            .map(|seed| {
                let mut chase = PointerChase::new(64 * 256, seed);
                chase.next_op().addr().unwrap()
            })
            .collect();
        assert!(firsts.len() > 5);
        let _ = SmallRng::seed_from_u64(0); // keep the import exercised
    }
}
