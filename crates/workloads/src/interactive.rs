//! Interactive (sleep-mostly) workloads.
//!
//! Cloud consolidation mixes batch polluters with latency-sensitive services
//! that sleep most of the time and run short bursts when a request arrives.
//! [`Interactive`] turns any workload model into such a service: it emits a
//! fixed-size burst of the inner workload's ops, then executes a WFI — the
//! vCPU blocks ([`Workload::wants_block`]) until the hypervisor delivers a
//! wake event, which grants the next burst.
//!
//! Blocking is driven entirely by the op stream, so the model stays
//! deterministic: the same seed produces the same bursts, and wake timing is
//! owned by the VM's `WakeSource` (a `kyoto-hypervisor` concept), not by the
//! workload.

use kyoto_sim::workload::{Op, Workload};

/// Wraps a workload into a burst-then-sleep interactive service.
///
/// Each wake grants `burst_ops` operations of the inner workload. Once the
/// burst is drained the workload pads any already-requested fetch with idle
/// compute ops and reports [`Workload::wants_block`] — the hypervisor parks
/// the vCPU at the end of the tick. [`Workload::on_wake`] re-arms the burst.
///
/// Note on granularity: the engine prefetches ops in chunks ahead of
/// execution, so a burst shorter than one tick's budget drains during the
/// first scheduled tick and the vCPU runs exactly one tick per wake. Larger
/// bursts simply span several consecutive ticks before the WFI.
#[derive(Debug, Clone)]
pub struct Interactive<W> {
    name: String,
    inner: W,
    burst_ops: u32,
    remaining: u32,
}

impl<W: Workload> Interactive<W> {
    /// Wraps `inner`, granting `burst_ops` inner ops per wake (at least 1).
    pub fn new(inner: W, burst_ops: u32) -> Self {
        let burst_ops = burst_ops.max(1);
        Interactive {
            name: format!("interactive-{}", inner.name()),
            inner,
            burst_ops,
            remaining: burst_ops,
        }
    }

    /// Renames the workload.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The configured burst length in ops.
    pub fn burst_ops(&self) -> u32 {
        self.burst_ops
    }

    /// Ops left in the current burst (0 means the workload wants to sleep).
    pub fn remaining_ops(&self) -> u32 {
        self.remaining
    }
}

impl<W: Workload + Clone + 'static> Workload for Interactive<W> {
    fn next_op(&mut self) -> Op {
        if self.remaining == 0 {
            // The burst drained mid-fetch: pad the already-requested chunk
            // with idle compute. The vCPU blocks at the end of the tick.
            return Op::Compute { cycles: 1 };
        }
        self.remaining -= 1;
        self.inner.next_op()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn working_set_bytes(&self) -> u64 {
        self.inner.working_set_bytes()
    }

    fn mem_parallelism(&self) -> f64 {
        self.inner.mem_parallelism()
    }

    fn wants_block(&self) -> bool {
        self.remaining == 0
    }

    fn on_wake(&mut self) {
        self.remaining = self.burst_ops;
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.remaining = self.burst_ops;
    }

    fn try_clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Streaming;
    use kyoto_sim::workload::ComputeOnly;

    #[test]
    fn a_burst_drains_then_the_workload_wants_to_sleep() {
        let mut w = Interactive::new(ComputeOnly::new(3), 4);
        assert!(!w.wants_block());
        for _ in 0..4 {
            w.next_op();
        }
        assert!(w.wants_block());
        assert_eq!(w.remaining_ops(), 0);
    }

    #[test]
    fn drained_bursts_pad_with_idle_compute() {
        let mut w = Interactive::new(Streaming::new(1 << 16, 1).with_mem_fraction(1.0), 2);
        w.next_op();
        w.next_op();
        for _ in 0..10 {
            assert_eq!(w.next_op(), Op::Compute { cycles: 1 });
        }
    }

    #[test]
    fn waking_rearms_the_burst() {
        let mut w = Interactive::new(ComputeOnly::new(1), 8);
        for _ in 0..8 {
            w.next_op();
        }
        assert!(w.wants_block());
        w.on_wake();
        assert!(!w.wants_block());
        assert_eq!(w.remaining_ops(), 8);
    }

    #[test]
    fn inner_metadata_shines_through() {
        let inner = Streaming::new(1 << 20, 7);
        let ws = inner.working_set_bytes();
        let mlp = inner.mem_parallelism();
        let w = Interactive::new(inner, 16);
        assert_eq!(w.name(), "interactive-streaming");
        assert_eq!(w.working_set_bytes(), ws);
        assert_eq!(w.mem_parallelism(), mlp);
        assert_eq!(Interactive::new(ComputeOnly::new(1), 1).named("svc").name(), "svc");
    }

    #[test]
    fn clones_continue_identically() {
        let mut a = Interactive::new(Streaming::new(1 << 16, 3), 64);
        for _ in 0..10 {
            a.next_op();
        }
        let mut b = a.try_clone_box().unwrap();
        for _ in 0..20 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert_eq!(a.wants_block(), b.wants_block());
    }

    #[test]
    fn reset_restores_a_fresh_burst() {
        let mut w = Interactive::new(Streaming::new(1 << 16, 5).with_mem_fraction(1.0), 4);
        let first_addr = w.next_op().addr().unwrap();
        for _ in 0..6 {
            w.next_op();
        }
        assert!(w.wants_block());
        w.reset();
        assert!(!w.wants_block());
        // The inner scan restarts from the top of its working set.
        assert_eq!(w.next_op().addr().unwrap(), first_addr);
    }

    #[test]
    fn burst_length_is_clamped_to_at_least_one() {
        let w = Interactive::new(ComputeOnly::new(1), 0);
        assert_eq!(w.burst_ops(), 1);
    }
}
