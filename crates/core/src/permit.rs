//! Pollution permits and the pollution-quota accounting.
//!
//! Kyoto adds one configuration parameter to a VM: its booked pollution
//! permit `llc_cap`, expressed in LLC misses per millisecond of CPU time.
//! At runtime the scheduler maintains a *pollution quota* per VM which works
//! exactly like the credit scheduler's credit:
//!
//! * at the end of every time slice the VM **earns** quota proportional to
//!   its booked `llc_cap`;
//! * every tick the scheduler **debits** the quota by the pollution the VM
//!   actually generated (its measured `llc_cap_act` times the CPU time it
//!   consumed, i.e. its attributed LLC misses);
//! * a VM whose quota goes negative is **punished**: it is put in priority
//!   `OVER` and cannot use the processor until its quota becomes positive
//!   again.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A booked pollution permit: LLC misses per millisecond of CPU time.
///
/// The paper writes `250k·v` for a VM `v` whose permit is 250 000.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct LlcCap(f64);

impl LlcCap {
    /// Creates a permit; negative values are clamped to zero.
    pub fn new(misses_per_ms: f64) -> Self {
        LlcCap(misses_per_ms.max(0.0))
    }

    /// Creates a permit from the paper's `k` notation (`LlcCap::kilo(250)` is
    /// the paper's `250k`).
    pub fn kilo(thousands: f64) -> Self {
        Self::new(thousands * 1000.0)
    }

    /// The permit value in misses per millisecond.
    pub fn misses_per_ms(&self) -> f64 {
        self.0
    }

    /// Scales the permit (used when experiments run on scaled-down machines:
    /// a machine scaled by `s` has `1/s` of the memory bandwidth, so booked
    /// permits scale identically).
    pub fn scaled(&self, factor: u64) -> Self {
        LlcCap(self.0 / factor.max(1) as f64)
    }
}

impl fmt::Display for LlcCap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.0}k", self.0 / 1000.0)
        } else {
            write!(f, "{:.0}", self.0)
        }
    }
}

impl From<f64> for LlcCap {
    fn from(value: f64) -> Self {
        LlcCap::new(value)
    }
}

/// Runtime pollution-quota accounting for one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PollutionQuota {
    booked: LlcCap,
    quota: f64,
    /// Maximum quota the VM may bank, in multiples of one slice's earning.
    max_bank_slices: f64,
    punished: bool,
    punishments: u64,
    total_debited: f64,
    total_earned: f64,
}

impl PollutionQuota {
    /// Creates the quota accounting for a VM that booked `booked`.
    ///
    /// The VM starts with one slice worth of quota so it is not punished
    /// before its first accounting period.
    pub fn new(booked: LlcCap, slice_ms: f64) -> Self {
        PollutionQuota {
            booked,
            quota: booked.misses_per_ms() * slice_ms,
            max_bank_slices: 2.0,
            punished: false,
            punishments: 0,
            total_debited: 0.0,
            total_earned: 0.0,
        }
    }

    /// The booked permit.
    pub fn booked(&self) -> LlcCap {
        self.booked
    }

    /// Current quota in misses (may be negative while punished).
    pub fn quota(&self) -> f64 {
        self.quota
    }

    /// Whether the VM is currently punished (quota exhausted).
    pub fn is_punished(&self) -> bool {
        self.punished
    }

    /// Number of times the VM entered the punished state.
    pub fn punishments(&self) -> u64 {
        self.punishments
    }

    /// Total pollution debited so far (misses).
    pub fn total_debited(&self) -> f64 {
        self.total_debited
    }

    /// Total quota earned so far (misses).
    pub fn total_earned(&self) -> f64 {
        self.total_earned
    }

    /// Debits the pollution attributed to the VM for one tick.
    ///
    /// Returns `true` when this debit pushed the VM into the punished state.
    pub fn debit(&mut self, attributed_misses: f64) -> bool {
        let misses = attributed_misses.max(0.0);
        self.quota -= misses;
        self.total_debited += misses;
        if self.quota < 0.0 && !self.punished {
            self.punished = true;
            self.punishments += 1;
            true
        } else {
            false
        }
    }

    /// Earns the end-of-slice quota replenishment for a slice of `slice_ms`
    /// milliseconds. Returns `true` when the VM left the punished state.
    pub fn earn(&mut self, slice_ms: f64) -> bool {
        let earned = self.booked.misses_per_ms() * slice_ms.max(0.0);
        let cap = earned * self.max_bank_slices;
        // The banking cap only limits growth: it never claws back quota that
        // was already banked under a longer slice.
        let target = (self.quota + earned).min(cap.max(earned));
        if target > self.quota {
            self.total_earned += target - self.quota;
            self.quota = target;
        }
        if self.punished && self.quota >= 0.0 {
            self.punished = false;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_cap_construction_and_display() {
        assert_eq!(LlcCap::kilo(250.0).misses_per_ms(), 250_000.0);
        assert_eq!(LlcCap::new(-5.0).misses_per_ms(), 0.0);
        assert_eq!(LlcCap::kilo(250.0).to_string(), "250k");
        assert_eq!(LlcCap::new(42.0).to_string(), "42");
        assert_eq!(LlcCap::from(10.0).misses_per_ms(), 10.0);
    }

    #[test]
    fn scaled_permits_shrink_with_the_machine() {
        let permit = LlcCap::kilo(250.0);
        assert_eq!(permit.scaled(16).misses_per_ms(), 250_000.0 / 16.0);
        assert_eq!(permit.scaled(0).misses_per_ms(), 250_000.0);
    }

    #[test]
    fn quota_starts_with_one_slice_of_headroom() {
        let quota = PollutionQuota::new(LlcCap::new(1000.0), 30.0);
        assert_eq!(quota.quota(), 30_000.0);
        assert!(!quota.is_punished());
    }

    #[test]
    fn debit_beyond_quota_punishes_once() {
        let mut quota = PollutionQuota::new(LlcCap::new(100.0), 30.0);
        assert!(!quota.debit(1000.0));
        assert!(
            quota.debit(5000.0),
            "crossing zero should report a punishment"
        );
        assert!(quota.is_punished());
        assert!(
            !quota.debit(1000.0),
            "already punished: not a new punishment"
        );
        assert_eq!(quota.punishments(), 1);
    }

    #[test]
    fn earning_restores_the_vm_when_quota_turns_positive() {
        let mut quota = PollutionQuota::new(LlcCap::new(100.0), 30.0);
        quota.debit(10_000.0); // way beyond the 3000 initial quota
        assert!(quota.is_punished());
        // One slice earns 3000: not yet positive.
        assert!(!quota.earn(30.0));
        assert!(quota.is_punished());
        // Keep earning until the debt is paid off.
        let mut released = false;
        for _ in 0..10 {
            released = quota.earn(30.0) || released;
        }
        assert!(released);
        assert!(!quota.is_punished());
    }

    #[test]
    fn quota_banking_is_bounded() {
        let mut quota = PollutionQuota::new(LlcCap::new(100.0), 30.0);
        for _ in 0..100 {
            quota.earn(30.0);
        }
        // At most two slices worth of quota can be banked.
        assert!(quota.quota() <= 100.0 * 30.0 * 2.0 + 1e-9);
    }

    #[test]
    fn zero_permit_vm_is_punished_by_any_pollution() {
        let mut quota = PollutionQuota::new(LlcCap::new(0.0), 30.0);
        assert!(quota.debit(1.0));
        assert!(quota.is_punished());
        // Earning nothing never releases it.
        assert!(!quota.earn(30.0));
        assert!(quota.is_punished());
    }

    #[test]
    fn negative_debits_are_ignored() {
        let mut quota = PollutionQuota::new(LlcCap::new(100.0), 30.0);
        let before = quota.quota();
        quota.debit(-500.0);
        assert_eq!(quota.quota(), before);
    }

    #[test]
    fn totals_accumulate() {
        let mut quota = PollutionQuota::new(LlcCap::new(100.0), 30.0);
        quota.debit(100.0);
        quota.debit(200.0);
        quota.earn(30.0);
        assert_eq!(quota.total_debited(), 300.0);
        assert!(quota.total_earned() > 0.0);
    }

    #[test]
    fn punishment_cycle_can_repeat() {
        let mut quota = PollutionQuota::new(LlcCap::new(100.0), 30.0);
        quota.debit(10_000.0);
        for _ in 0..10 {
            quota.earn(30.0);
        }
        assert!(!quota.is_punished());
        quota.debit(10_000.0);
        assert!(quota.is_punished());
        assert_eq!(quota.punishments(), 2);
    }
}
