//! Pollution indicators: Equation 1 and the raw-LLCM alternative.
//!
//! Section 3.3 of the paper estimates a VM's actual pollution level with
//!
//! ```text
//! llc_cap_act = llc_misses * cpu_freq_khz / unhalted_core_cycles      (1)
//! ```
//!
//! i.e. LLC misses per millisecond of CPU time. Section 4.2 compares this
//! indicator against the raw LLC-miss count per sampling window (LLCM) and
//! shows — via Kendall's tau against the measured aggressiveness — that
//! Equation 1 ranks polluters better.

use kyoto_sim::pmc::PmcSet;
use serde::{Deserialize, Serialize};

/// Computes Equation 1: LLC misses per millisecond of CPU time.
///
/// Returns `0` when no cycle has elapsed (an idle sampling window).
pub fn llc_cap_act(llc_misses: u64, unhalted_core_cycles: u64, cpu_freq_khz: u64) -> f64 {
    if unhalted_core_cycles == 0 {
        0.0
    } else {
        llc_misses as f64 * cpu_freq_khz as f64 / unhalted_core_cycles as f64
    }
}

/// Computes Equation 1 directly from a counter sample.
pub fn llc_cap_act_from_pmcs(pmcs: &PmcSet, cpu_freq_khz: u64) -> f64 {
    llc_cap_act(pmcs.llc_misses, pmcs.unhalted_core_cycles, cpu_freq_khz)
}

/// The raw-LLCM indicator of Section 4.2: LLC misses normalised to a fixed
/// instruction window (the paper samples "each 100 million of instructions").
///
/// Returns `0` when no instruction was retired.
pub fn llcm_indicator(llc_misses: u64, instructions: u64, window_instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        llc_misses as f64 * window_instructions as f64 / instructions as f64
    }
}

/// Sampling window used by the paper when computing indicators
/// (100 million instructions).
pub const PAPER_SAMPLING_WINDOW_INSTRUCTIONS: u64 = 100_000_000;

/// A pollution-indicator kind, used by the Fig. 4 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Indicator {
    /// Equation 1 (misses per millisecond of CPU time).
    Equation1,
    /// Raw LLC misses per instruction window.
    Llcm,
}

impl Indicator {
    /// Evaluates the indicator over a counter sample.
    pub fn evaluate(&self, pmcs: &PmcSet, cpu_freq_khz: u64) -> f64 {
        match self {
            Indicator::Equation1 => llc_cap_act_from_pmcs(pmcs, cpu_freq_khz),
            Indicator::Llcm => llcm_indicator(
                pmcs.llc_misses,
                pmcs.instructions,
                PAPER_SAMPLING_WINDOW_INSTRUCTIONS,
            ),
        }
    }

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Indicator::Equation1 => "equation1",
            Indicator::Llcm => "llcm",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_matches_the_papers_formula() {
        // 1000 misses over 2.8M cycles at 2.8 GHz (2.8M kHz) = 1000 misses/ms.
        let value = llc_cap_act(1000, 2_800_000, 2_800_000);
        assert!((value - 1000.0).abs() < 1e-9);
        // Half the cycles -> twice the rate.
        assert!((llc_cap_act(1000, 1_400_000, 2_800_000) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn equation_1_handles_idle_windows() {
        assert_eq!(llc_cap_act(100, 0, 2_800_000), 0.0);
    }

    #[test]
    fn equation_1_is_linear_in_misses() {
        let one = llc_cap_act(10, 1_000_000, 2_800_000);
        let ten = llc_cap_act(100, 1_000_000, 2_800_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn llcm_normalises_to_the_window() {
        // 50 misses over 50M instructions = 100 misses per 100M instructions.
        let value = llcm_indicator(50, 50_000_000, PAPER_SAMPLING_WINDOW_INSTRUCTIONS);
        assert!((value - 100.0).abs() < 1e-9);
        assert_eq!(
            llcm_indicator(50, 0, PAPER_SAMPLING_WINDOW_INSTRUCTIONS),
            0.0
        );
    }

    #[test]
    fn indicators_disagree_for_low_ipc_workloads() {
        // Two applications with the same misses per instruction but different
        // IPC: the slow (memory-stalled) one pollutes fewer lines per ms.
        let fast = PmcSet {
            instructions: 1_000_000,
            unhalted_core_cycles: 2_000_000,
            llc_misses: 10_000,
            ..PmcSet::default()
        };
        let slow = PmcSet {
            instructions: 1_000_000,
            unhalted_core_cycles: 20_000_000,
            llc_misses: 10_000,
            ..PmcSet::default()
        };
        let freq = 2_800_000;
        assert_eq!(
            Indicator::Llcm.evaluate(&fast, freq),
            Indicator::Llcm.evaluate(&slow, freq),
            "LLCM cannot tell them apart"
        );
        assert!(
            Indicator::Equation1.evaluate(&fast, freq)
                > Indicator::Equation1.evaluate(&slow, freq) * 5.0,
            "Equation 1 must rank the fast polluter far higher"
        );
    }

    #[test]
    fn indicator_names() {
        assert_eq!(Indicator::Equation1.name(), "equation1");
        assert_eq!(Indicator::Llcm.name(), "llcm");
    }
}
