//! # kyoto-core — the Kyoto polluters-pay mechanism
//!
//! This crate is the primary contribution of the reproduced paper
//! ("Mitigating performance unpredictability in the IaaS using the Kyoto
//! principle", Middleware 2016): a software mechanism that turns last-level
//! cache pollution into a bookable, enforceable resource.
//!
//! * [`permit`] — the `llc_cap` pollution permit and the runtime pollution
//!   quota (earned per slice, debited by measured pollution).
//! * [`equation`] — Equation 1 (`llc_misses * cpu_freq_khz /
//!   unhalted_core_cycles`) and the raw-LLCM alternative indicator.
//! * [`monitor`] — the three pollution-attribution strategies: raw per-vCPU
//!   counters, socket dedication (with its skip heuristics) and
//!   simulator-based attribution.
//! * [`ks4`] — [`ks4::KyotoScheduler`], the quota-enforcement layer over any
//!   substrate scheduler, with the paper's three prototypes as aliases:
//!   [`ks4::Ks4Xen`], [`ks4::Ks4Linux`] and [`ks4::Ks4Pisces`].
//! * [`policy`] — the provider-side permit catalogue and billing helper
//!   (Section 5).
//!
//! # Example: protecting a sensitive VM from an aggressive neighbour
//!
//! ```
//! use kyoto_core::ks4::ks4xen_hypervisor;
//! use kyoto_core::monitor::MonitoringStrategy;
//! use kyoto_hypervisor::hypervisor::HypervisorConfig;
//! use kyoto_hypervisor::vm::VmConfig;
//! use kyoto_sim::topology::{CoreId, Machine, MachineConfig};
//! use kyoto_workloads::spec::{SpecApp, SpecWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scale = 64;
//! let machine = Machine::new(MachineConfig::scaled_paper_machine(scale));
//! let mut hypervisor = ks4xen_hypervisor(
//!     machine,
//!     HypervisorConfig::default(),
//!     MonitoringStrategy::DirectPmc,
//! );
//! // The sensitive VM books a generous permit, the polluter a small one.
//! let sensitive = hypervisor.add_vm_with(
//!     VmConfig::new("gcc").pinned_to(vec![CoreId(0)]).with_llc_cap(250_000.0 / scale as f64),
//!     Box::new(SpecWorkload::new(SpecApp::Gcc, scale, 1)),
//! )?;
//! hypervisor.add_vm_with(
//!     VmConfig::new("lbm").pinned_to(vec![CoreId(1)]).with_llc_cap(50_000.0 / scale as f64),
//!     Box::new(SpecWorkload::new(SpecApp::Lbm, scale, 2)),
//! )?;
//! hypervisor.run_ms(300);
//! let report = hypervisor.report(sensitive).expect("vm exists");
//! assert!(report.pmcs.instructions > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equation;
pub mod ks4;
pub mod monitor;
pub mod permit;
pub mod policy;

pub use equation::{llc_cap_act, llc_cap_act_from_pmcs, llcm_indicator, Indicator};
pub use ks4::{
    ks4linux, ks4linux_hypervisor, ks4pisces, ks4pisces_hypervisor, ks4xen, ks4xen_hypervisor,
    Ks4Linux, Ks4Pisces, Ks4Xen, KyotoConfig, KyotoScheduler,
};
pub use monitor::{DedicationSampler, MonitoringStrategy, SocketDedicationConfig};
pub use permit::{LlcCap, PollutionQuota};
pub use policy::{Bill, InstanceFamily, InstanceType, PermitCatalog};
