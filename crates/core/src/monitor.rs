//! Pollution-monitoring strategies (Section 3.3 of the paper).
//!
//! Computing a VM's `llc_cap_act` needs LLC statistics *attributable to that
//! VM alone*, which is hard when several VMs run in parallel atop the same
//! LLC ("a VM should not be punished for the pollution of another VM"). The
//! paper describes two solutions, both modelled here, plus the naive
//! baseline:
//!
//! * [`MonitoringStrategy::DirectPmc`] — read the per-vCPU virtualised
//!   counters as-is. Under contention the counts are inflated by the misses
//!   other VMs induce, which is exactly the inaccuracy Fig. 10 quantifies
//!   ("Not isolated" bars).
//! * [`MonitoringStrategy::SocketDedication`] — periodically dedicate the
//!   socket to the vCPU being sampled and migrate every other vCPU to the
//!   other socket for the duration of the sample. Accurate, but the migrated
//!   vCPUs pay remote-memory latencies (Fig. 9); two heuristics allow the
//!   sampling to be skipped (Fig. 10).
//! * [`MonitoringStrategy::SimulatorAttribution`] — replay the vCPU's access
//!   stream in a private micro-architectural simulator (McSimA+ in the
//!   paper, the shadow-LLC of `kyoto-sim` here) and use the solo miss count
//!   it reports (Fig. 11).

use kyoto_hypervisor::vm::VcpuId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the socket-dedication monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketDedicationConfig {
    /// Length of one sampling window, in scheduler ticks.
    pub sampling_ticks: u64,
    /// Idle ticks between two consecutive sampling windows.
    pub interval_ticks: u64,
    /// Heuristic 1 (Fig. 10): skip the isolation of vCPUs whose last
    /// estimate is below [`SocketDedicationConfig::low_pollution_threshold`]
    /// — they are neither disturbers nor sensitive.
    pub skip_low_polluters: bool,
    /// Heuristic 2 (Fig. 10): skip the isolation when every *other* vCPU is
    /// below the threshold — the co-runners are quiet, so the raw counters
    /// are already close to the solo value.
    pub skip_when_neighbours_quiet: bool,
    /// Threshold (misses per ms) below which a vCPU counts as a low polluter.
    pub low_pollution_threshold: f64,
}

impl Default for SocketDedicationConfig {
    fn default() -> Self {
        SocketDedicationConfig {
            sampling_ticks: 3,
            interval_ticks: 9,
            skip_low_polluters: false,
            skip_when_neighbours_quiet: false,
            low_pollution_threshold: 1_000.0,
        }
    }
}

/// How the Kyoto scheduler attributes LLC statistics to individual vCPUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum MonitoringStrategy {
    /// Use the per-vCPU virtualised counters directly (no isolation).
    #[default]
    DirectPmc,
    /// Periodically dedicate the socket to the sampled vCPU.
    SocketDedication(SocketDedicationConfig),
    /// Use the shadow-LLC (simulator) solo-miss estimate.
    SimulatorAttribution,
}

impl MonitoringStrategy {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            MonitoringStrategy::DirectPmc => "direct-pmc",
            MonitoringStrategy::SocketDedication(_) => "socket-dedication",
            MonitoringStrategy::SimulatorAttribution => "simulator",
        }
    }
}

/// Phase of the socket-dedication state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No sampling in progress.
    Idle {
        /// Ticks until the next sampling window opens.
        remaining: u64,
    },
    /// A vCPU is being sampled with the socket dedicated to it.
    Sampling {
        /// The sampled vCPU.
        target: VcpuId,
        /// Ticks left in the window.
        remaining: u64,
    },
}

/// Rotating socket-dedication sampler.
///
/// The sampler cycles through the monitored vCPUs; while a vCPU is being
/// sampled, every other vCPU is considered *migrated*: the Kyoto scheduler
/// keeps it off the dedicated socket and charges it remote-memory latency.
#[derive(Debug, Clone)]
pub struct DedicationSampler {
    config: SocketDedicationConfig,
    rotation: Vec<VcpuId>,
    /// vCPUs currently Blocked (WFI): they execute nothing, so dedicating
    /// the socket to one would measure an empty window. They stay in the
    /// rotation and are sampled again once they wake.
    blocked: BTreeSet<VcpuId>,
    next_index: usize,
    phase: Phase,
    samples_taken: u64,
    samples_skipped: u64,
}

impl DedicationSampler {
    /// Creates an idle sampler.
    pub fn new(config: SocketDedicationConfig) -> Self {
        DedicationSampler {
            config,
            rotation: Vec::new(),
            blocked: BTreeSet::new(),
            next_index: 0,
            phase: Phase::Idle {
                remaining: config.interval_ticks,
            },
            samples_taken: 0,
            samples_skipped: 0,
        }
    }

    /// Registers a vCPU in the sampling rotation.
    pub fn register(&mut self, vcpu: VcpuId) {
        if !self.rotation.contains(&vcpu) {
            self.rotation.push(vcpu);
        }
    }

    /// Removes a vCPU from the rotation.
    pub fn unregister(&mut self, vcpu: VcpuId) {
        self.rotation.retain(|&v| v != vcpu);
        self.blocked.remove(&vcpu);
        if let Phase::Sampling { target, .. } = self.phase {
            if target == vcpu {
                self.phase = Phase::Idle {
                    remaining: self.config.interval_ticks,
                };
            }
        }
    }

    /// Marks a vCPU Blocked (parked on a WFI) or runnable again. Blocked
    /// vCPUs are passed over when a sampling window opens, and a target
    /// that blocks *mid-window* aborts its window on the spot — the socket
    /// would otherwise stay dedicated to a vCPU that executes nothing. The
    /// aborted window counts neither as taken nor as heuristically skipped.
    pub fn set_blocked(&mut self, vcpu: VcpuId, blocked: bool) {
        if blocked {
            self.blocked.insert(vcpu);
            if self.sampling_target() == Some(vcpu) {
                self.phase = Phase::Idle {
                    remaining: self.config.interval_ticks,
                };
            }
        } else {
            self.blocked.remove(&vcpu);
        }
    }

    /// Whether a vCPU is currently marked Blocked.
    pub fn is_blocked(&self, vcpu: VcpuId) -> bool {
        self.blocked.contains(&vcpu)
    }

    /// The vCPU currently being sampled, if any.
    pub fn sampling_target(&self) -> Option<VcpuId> {
        match self.phase {
            Phase::Sampling { target, .. } => Some(target),
            Phase::Idle { .. } => None,
        }
    }

    /// Whether `vcpu` is currently migrated away from the dedicated socket.
    pub fn is_migrated(&self, vcpu: VcpuId) -> bool {
        matches!(self.phase, Phase::Sampling { target, .. } if target != vcpu)
    }

    /// Number of sampling windows completed so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Number of sampling windows skipped *entirely* by the heuristics: the
    /// window would have opened, every candidate in the rotation was judged
    /// not to need isolation, and no vCPU was sampled for the whole window.
    ///
    /// Each skipped window counts exactly once, however many candidates the
    /// rotation holds. (An earlier version counted one skip per *candidate*
    /// considered, so a fully-skipped window over an `n`-vCPU rotation
    /// inflated the counter by `n` — overstating the Fig. 10 heuristic
    /// savings by the rotation length.) A window that passes over some
    /// low-pollution candidates but ends up sampling someone counts as
    /// taken, not skipped: isolation still happened, so nothing was saved.
    pub fn samples_skipped(&self) -> u64 {
        self.samples_skipped
    }

    /// Advances the state machine by one tick. `estimates` maps vCPUs to
    /// their last known pollution estimate (misses/ms) and feeds the two
    /// skip heuristics.
    pub fn on_tick(&mut self, estimates: &BTreeMap<VcpuId, f64>) {
        match &mut self.phase {
            Phase::Sampling { remaining, .. } => {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    self.samples_taken += 1;
                    self.phase = Phase::Idle {
                        remaining: self.config.interval_ticks,
                    };
                }
            }
            Phase::Idle { remaining } => {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    self.start_next_window(estimates);
                }
            }
        }
    }

    fn start_next_window(&mut self, estimates: &BTreeMap<VcpuId, f64>) {
        if self.rotation.is_empty() {
            self.phase = Phase::Idle {
                remaining: self.config.interval_ticks,
            };
            return;
        }
        // Try each vCPU in rotation order until one needs isolation.
        // Blocked vCPUs are passed over outright — they execute nothing,
        // so a window dedicated to one would measure an empty socket.
        let mut heuristic_skip = false;
        for _ in 0..self.rotation.len() {
            let target = self.rotation[self.next_index % self.rotation.len()];
            self.next_index = (self.next_index + 1) % self.rotation.len();
            if self.blocked.contains(&target) {
                continue;
            }
            if self.should_skip(target, estimates) {
                heuristic_skip = true;
                continue;
            }
            self.phase = Phase::Sampling {
                target,
                remaining: self.config.sampling_ticks.max(1),
            };
            return;
        }
        // Every candidate was passed over. The window counts as a heuristic
        // saving only when a heuristic did the skipping (once per window,
        // not per candidate — see [`DedicationSampler::samples_skipped`]);
        // a rotation that is merely asleep saves nothing worth reporting.
        if heuristic_skip {
            self.samples_skipped += 1;
        }
        self.phase = Phase::Idle {
            remaining: self.config.interval_ticks,
        };
    }

    fn should_skip(&self, target: VcpuId, estimates: &BTreeMap<VcpuId, f64>) -> bool {
        let threshold = self.config.low_pollution_threshold;
        if self.config.skip_low_polluters {
            if let Some(&estimate) = estimates.get(&target) {
                if estimate < threshold {
                    return true;
                }
            }
        }
        if self.config.skip_when_neighbours_quiet {
            let neighbours_quiet = self
                .rotation
                .iter()
                .filter(|&&v| v != target)
                .all(|v| estimates.get(v).copied().unwrap_or(f64::MAX) < threshold);
            if neighbours_quiet && !self.rotation.is_empty() && self.rotation.len() > 1 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyoto_hypervisor::vm::VmId;

    fn vcpu(vm: u16) -> VcpuId {
        VcpuId::new(VmId(vm), 0)
    }

    fn sampler(config: SocketDedicationConfig) -> DedicationSampler {
        let mut s = DedicationSampler::new(config);
        s.register(vcpu(1));
        s.register(vcpu(2));
        s
    }

    fn tick_n(s: &mut DedicationSampler, n: u64, estimates: &BTreeMap<VcpuId, f64>) {
        for _ in 0..n {
            s.on_tick(estimates);
        }
    }

    #[test]
    fn sampler_rotates_through_vcpus() {
        let config = SocketDedicationConfig {
            sampling_ticks: 2,
            interval_ticks: 3,
            ..SocketDedicationConfig::default()
        };
        let mut s = sampler(config);
        let estimates = BTreeMap::new();
        assert_eq!(s.sampling_target(), None);
        tick_n(&mut s, 3, &estimates);
        let first = s.sampling_target().expect("a window should have opened");
        // Window runs for 2 ticks, then idles 3, then samples the other vCPU.
        tick_n(&mut s, 2, &estimates);
        assert_eq!(s.sampling_target(), None);
        tick_n(&mut s, 3, &estimates);
        let second = s.sampling_target().expect("second window");
        assert_ne!(first, second, "rotation should alternate targets");
        assert_eq!(s.samples_taken(), 1);
    }

    #[test]
    fn migration_applies_to_everyone_but_the_target() {
        let config = SocketDedicationConfig {
            sampling_ticks: 5,
            interval_ticks: 1,
            ..SocketDedicationConfig::default()
        };
        let mut s = sampler(config);
        let estimates = BTreeMap::new();
        tick_n(&mut s, 1, &estimates);
        let target = s.sampling_target().unwrap();
        let other = if target == vcpu(1) { vcpu(2) } else { vcpu(1) };
        assert!(!s.is_migrated(target));
        assert!(s.is_migrated(other));
        assert!(
            s.is_migrated(vcpu(99)),
            "unmonitored vCPUs are migrated too"
        );
    }

    #[test]
    fn no_sampling_without_registered_vcpus() {
        let mut s = DedicationSampler::new(SocketDedicationConfig {
            interval_ticks: 1,
            ..SocketDedicationConfig::default()
        });
        let estimates = BTreeMap::new();
        tick_n(&mut s, 10, &estimates);
        assert_eq!(s.sampling_target(), None);
        assert!(!s.is_migrated(vcpu(1)));
    }

    #[test]
    fn low_polluters_are_skipped_when_heuristic_enabled() {
        let config = SocketDedicationConfig {
            sampling_ticks: 2,
            interval_ticks: 1,
            skip_low_polluters: true,
            low_pollution_threshold: 1_000.0,
            ..SocketDedicationConfig::default()
        };
        let mut s = DedicationSampler::new(config);
        s.register(vcpu(1));
        s.register(vcpu(2));
        let mut estimates = BTreeMap::new();
        estimates.insert(vcpu(1), 10.0); // hmmer-like: way below threshold
        estimates.insert(vcpu(2), 50_000.0); // polluter
        for _ in 0..40 {
            s.on_tick(&estimates);
            if let Some(target) = s.sampling_target() {
                assert_eq!(target, vcpu(2), "the low polluter must never be isolated");
            }
        }
        assert!(s.samples_taken() > 0);
        // Every window still sampled the polluter, so no *window* was
        // skipped — passing over the low polluter inside a window that
        // isolates someone else saves nothing.
        assert_eq!(s.samples_skipped(), 0);
    }

    #[test]
    fn a_fully_skipped_window_counts_one_skip_not_one_per_candidate() {
        // Both vCPUs are below the threshold, so every window is skipped
        // entirely. With interval_ticks = 1 a window opportunity occurs on
        // every tick: after N ticks exactly N windows were skipped — not
        // N * rotation_len, which the pre-fix accounting reported and which
        // overstated the Fig. 10 heuristic savings.
        let config = SocketDedicationConfig {
            sampling_ticks: 2,
            interval_ticks: 1,
            skip_low_polluters: true,
            low_pollution_threshold: 1_000.0,
            ..SocketDedicationConfig::default()
        };
        let mut s = sampler(config);
        let mut estimates = BTreeMap::new();
        estimates.insert(vcpu(1), 10.0);
        estimates.insert(vcpu(2), 20.0);
        tick_n(&mut s, 25, &estimates);
        assert_eq!(s.sampling_target(), None);
        assert_eq!(s.samples_taken(), 0);
        assert_eq!(
            s.samples_skipped(),
            25,
            "one skip per skipped window, independent of rotation length"
        );
    }

    #[test]
    fn quiet_neighbours_skip_sampling_entirely() {
        let config = SocketDedicationConfig {
            sampling_ticks: 2,
            interval_ticks: 1,
            skip_when_neighbours_quiet: true,
            low_pollution_threshold: 1_000.0,
            ..SocketDedicationConfig::default()
        };
        let mut s = DedicationSampler::new(config);
        s.register(vcpu(1));
        s.register(vcpu(2));
        let mut estimates = BTreeMap::new();
        estimates.insert(vcpu(1), 10.0);
        estimates.insert(vcpu(2), 20.0);
        for _ in 0..40 {
            s.on_tick(&estimates);
            assert_eq!(
                s.sampling_target(),
                None,
                "when every co-runner is quiet no isolation is needed"
            );
        }
        assert!(s.samples_skipped() > 0);
    }

    #[test]
    fn unregistering_the_target_aborts_the_window() {
        let config = SocketDedicationConfig {
            sampling_ticks: 10,
            interval_ticks: 1,
            ..SocketDedicationConfig::default()
        };
        let mut s = sampler(config);
        let estimates = BTreeMap::new();
        tick_n(&mut s, 1, &estimates);
        let target = s.sampling_target().unwrap();
        s.unregister(target);
        assert_eq!(s.sampling_target(), None);
    }

    #[test]
    fn blocked_vcpus_are_passed_over_when_a_window_opens() {
        let config = SocketDedicationConfig {
            sampling_ticks: 2,
            interval_ticks: 3,
            ..SocketDedicationConfig::default()
        };
        let mut s = sampler(config);
        let estimates = BTreeMap::new();
        s.set_blocked(vcpu(1), true);
        assert!(s.is_blocked(vcpu(1)));
        // Three windows in a row: each must target the runnable vCPU 2.
        for _ in 0..3 {
            tick_n(&mut s, 3, &estimates);
            assert_eq!(s.sampling_target(), Some(vcpu(2)));
            tick_n(&mut s, 2, &estimates);
        }
        // Waking vCPU 1 puts it straight back into the rotation.
        s.set_blocked(vcpu(1), false);
        tick_n(&mut s, 3, &estimates);
        assert_eq!(s.sampling_target(), Some(vcpu(1)));
    }

    #[test]
    fn a_target_blocking_mid_window_aborts_the_window() {
        let config = SocketDedicationConfig {
            sampling_ticks: 5,
            interval_ticks: 1,
            ..SocketDedicationConfig::default()
        };
        let mut s = sampler(config);
        let estimates = BTreeMap::new();
        tick_n(&mut s, 1, &estimates);
        let target = s.sampling_target().unwrap();
        s.set_blocked(target, true);
        assert_eq!(
            s.sampling_target(),
            None,
            "the socket must not stay dedicated to a sleeping vCPU"
        );
        assert_eq!(s.samples_taken(), 0, "an aborted window is not a sample");
        assert_eq!(s.samples_skipped(), 0, "nor a heuristic saving");
    }

    #[test]
    fn an_all_blocked_rotation_opens_no_window_and_claims_no_savings() {
        let config = SocketDedicationConfig {
            sampling_ticks: 2,
            interval_ticks: 3,
            ..SocketDedicationConfig::default()
        };
        let mut s = sampler(config);
        let estimates = BTreeMap::new();
        s.set_blocked(vcpu(1), true);
        s.set_blocked(vcpu(2), true);
        tick_n(&mut s, 20, &estimates);
        assert_eq!(s.sampling_target(), None);
        assert_eq!(s.samples_taken(), 0);
        assert_eq!(
            s.samples_skipped(),
            0,
            "sleeping vCPUs are not a Fig. 10 heuristic saving"
        );
    }

    #[test]
    fn strategy_names_and_defaults() {
        assert_eq!(MonitoringStrategy::DirectPmc.name(), "direct-pmc");
        assert_eq!(MonitoringStrategy::SimulatorAttribution.name(), "simulator");
        assert_eq!(
            MonitoringStrategy::SocketDedication(SocketDedicationConfig::default()).name(),
            "socket-dedication"
        );
        assert_eq!(MonitoringStrategy::default(), MonitoringStrategy::DirectPmc);
        let config = SocketDedicationConfig::default();
        assert!(config.sampling_ticks >= 1);
        assert!(config.interval_ticks >= 1);
    }
}
