//! The Kyoto scheduler: pollution-quota enforcement layered over an existing
//! vCPU scheduler.
//!
//! Section 3.2 of the paper describes KS4Xen as a small extension of the Xen
//! credit scheduler (about 110 lines of C): on top of the CPU credit, every
//! VM gets a *pollution quota* fed by its booked `llc_cap`; the quota is
//! debited by the VM's measured pollution, and a VM whose quota goes
//! negative is put in priority `OVER` until the quota recovers. The same
//! extension applied to CFS gives KS4Linux and applied to Pisces gives
//! KS4Pisces.
//!
//! [`KyotoScheduler`] is that extension, generic over the inner scheduler,
//! with the three paper prototypes available as the type aliases
//! [`Ks4Xen`], [`Ks4Linux`] and [`Ks4Pisces`].

use crate::equation::{llc_cap_act, llc_cap_act_from_pmcs};
#[cfg(test)]
use crate::monitor::SocketDedicationConfig;
use crate::monitor::{DedicationSampler, MonitoringStrategy};
use crate::permit::{LlcCap, PollutionQuota};
use kyoto_hypervisor::cfs::{CfsConfig, CfsScheduler};
use kyoto_hypervisor::credit::{CreditConfig, CreditScheduler};
use kyoto_hypervisor::hypervisor::{Hypervisor, HypervisorConfig};
use kyoto_hypervisor::pisces::PiscesScheduler;
use kyoto_hypervisor::scheduler::{ExecOverrides, Priority, Scheduler, TickReport};
use kyoto_hypervisor::vm::{VcpuId, VmConfig, VmId};
use kyoto_sim::topology::{CoreId, Machine, MachineConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Static configuration of a Kyoto scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KyotoConfig {
    /// Core frequency in kHz (the `cpu_freq_khz` term of Equation 1).
    pub freq_khz: u64,
    /// Scheduler tick length in milliseconds.
    pub tick_ms: u64,
    /// Ticks per time slice (quota is earned at slice boundaries).
    pub ticks_per_slice: u32,
    /// How pollution is attributed to individual vCPUs.
    pub strategy: MonitoringStrategy,
    /// Cores per socket (used to dedicate socket 0 during sampling).
    pub cores_per_socket: usize,
    /// Number of sockets on the machine.
    pub num_sockets: usize,
}

impl KyotoConfig {
    /// Derives the Kyoto configuration from a machine and the hypervisor
    /// timing parameters.
    pub fn from_machine(
        machine: &MachineConfig,
        hypervisor: &HypervisorConfig,
        strategy: MonitoringStrategy,
    ) -> Self {
        KyotoConfig {
            freq_khz: machine.freq_khz,
            tick_ms: hypervisor.tick_ms,
            ticks_per_slice: hypervisor.ticks_per_slice,
            strategy,
            cores_per_socket: machine.cores_per_socket,
            num_sockets: machine.sockets,
        }
    }

    /// Duration of one slice in milliseconds.
    pub fn slice_ms(&self) -> f64 {
        (self.tick_ms * u64::from(self.ticks_per_slice)) as f64
    }
}

/// Pollution-quota enforcement over an inner scheduler.
#[derive(Debug, Clone)]
pub struct KyotoScheduler<S> {
    inner: S,
    config: KyotoConfig,
    quotas: BTreeMap<VcpuId, PollutionQuota>,
    estimates: BTreeMap<VcpuId, f64>,
    sampler: Option<DedicationSampler>,
    vcpus: Vec<VcpuId>,
    /// vCPUs currently Blocked (WFI). Their quota accounting stands
    /// completely still — no debits (they never run) and no slice
    /// earnings: a VM cannot bank pollution budget, or serve out a
    /// punishment, by sleeping.
    blocked: BTreeSet<VcpuId>,
}

/// KS4Xen: the Kyoto extension of the Xen credit scheduler.
pub type Ks4Xen = KyotoScheduler<CreditScheduler>;
/// KS4Linux: the Kyoto extension of the Linux CFS (the KVM prototype).
pub type Ks4Linux = KyotoScheduler<CfsScheduler>;
/// KS4Pisces: the Kyoto extension of the Pisces co-kernel partitioner.
pub type Ks4Pisces = KyotoScheduler<PiscesScheduler>;

impl<S> KyotoScheduler<S> {
    /// Wraps `inner` with Kyoto pollution enforcement.
    pub fn new(inner: S, config: KyotoConfig) -> Self {
        let sampler = match config.strategy {
            MonitoringStrategy::SocketDedication(dedication) => {
                Some(DedicationSampler::new(dedication))
            }
            _ => None,
        };
        KyotoScheduler {
            inner,
            config,
            quotas: BTreeMap::new(),
            estimates: BTreeMap::new(),
            sampler,
            vcpus: Vec::new(),
            blocked: BTreeSet::new(),
        }
    }

    /// The inner (substrate) scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The Kyoto configuration.
    pub fn config(&self) -> KyotoConfig {
        self.config
    }

    /// The monitoring strategy in use.
    pub fn strategy(&self) -> MonitoringStrategy {
        self.config.strategy
    }

    /// The socket-dedication sampler, when that strategy is active.
    pub fn sampler(&self) -> Option<&DedicationSampler> {
        self.sampler.as_ref()
    }

    /// The current pollution estimate (`llc_cap_act`, misses/ms) of a vCPU.
    pub fn measured_llc_cap(&self, vcpu: VcpuId) -> Option<f64> {
        self.estimates.get(&vcpu).copied()
    }

    /// The quota accounting of a vCPU, when its VM booked a permit.
    pub fn quota(&self, vcpu: VcpuId) -> Option<&PollutionQuota> {
        self.quotas.get(&vcpu)
    }

    /// Whether a vCPU is currently punished.
    pub fn is_punished(&self, vcpu: VcpuId) -> bool {
        self.quotas
            .get(&vcpu)
            .map(|q| q.is_punished())
            .unwrap_or(false)
    }

    /// Books (or re-books) a permit for every vCPU of `vm`.
    pub fn set_vm_permit(&mut self, vm: VmId, permit: LlcCap) {
        let slice_ms = self.config.slice_ms();
        for vcpu in self.vcpus.iter().filter(|v| v.vm == vm) {
            self.quotas
                .insert(*vcpu, PollutionQuota::new(permit, slice_ms));
        }
    }

    /// Removes the permit of every vCPU of `vm` (the VM is no longer
    /// subject to pollution enforcement).
    pub fn clear_vm_permit(&mut self, vm: VmId) {
        self.quotas.retain(|vcpu, _| vcpu.vm != vm);
    }

    fn socket_of_core(&self, core: CoreId) -> usize {
        core.0 / self.config.cores_per_socket.max(1)
    }

    fn attribute(&self, vcpu: VcpuId, report: &TickReport) -> (f64, Option<f64>) {
        let raw_misses = report.pmc_delta.llc_misses as f64;
        let raw_estimate = llc_cap_act_from_pmcs(&report.pmc_delta, self.config.freq_khz);
        match self.config.strategy {
            MonitoringStrategy::DirectPmc => (raw_misses, Some(raw_estimate)),
            MonitoringStrategy::SimulatorAttribution => {
                let misses = report
                    .shadow_llc_misses
                    .map(|m| m as f64)
                    .unwrap_or(raw_misses);
                let estimate = llc_cap_act(
                    misses.round() as u64,
                    report.pmc_delta.unhalted_core_cycles,
                    self.config.freq_khz,
                );
                (misses, Some(estimate))
            }
            MonitoringStrategy::SocketDedication(_) => {
                let sampling_me = self
                    .sampler
                    .as_ref()
                    .and_then(|s| s.sampling_target())
                    .map(|t| t == vcpu)
                    .unwrap_or(false);
                if sampling_me {
                    // The socket is dedicated: the raw counters are the solo
                    // counters.
                    (raw_misses, Some(raw_estimate))
                } else {
                    // Outside a dedicated window, charge the last known
                    // estimate; fall back to the raw counters until the vCPU
                    // has been sampled at least once.
                    let consumed_ms = report.consumed_cycles as f64 / self.config.freq_khz as f64;
                    match self.estimates.get(&vcpu) {
                        Some(&estimate) => (estimate * consumed_ms, None),
                        None => (raw_misses, Some(raw_estimate)),
                    }
                }
            }
        }
    }
}

impl<S: Scheduler> Scheduler for KyotoScheduler<S> {
    fn add_vcpu(&mut self, vcpu: VcpuId, config: &VmConfig) {
        self.inner.add_vcpu(vcpu, config);
        self.vcpus.push(vcpu);
        if let Some(llc_cap) = config.llc_cap {
            self.quotas.insert(
                vcpu,
                PollutionQuota::new(LlcCap::new(llc_cap), self.config.slice_ms()),
            );
        }
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.register(vcpu);
        }
    }

    fn remove_vcpu(&mut self, vcpu: VcpuId) {
        self.inner.remove_vcpu(vcpu);
        self.vcpus.retain(|&v| v != vcpu);
        self.quotas.remove(&vcpu);
        self.estimates.remove(&vcpu);
        self.blocked.remove(&vcpu);
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.unregister(vcpu);
        }
    }

    fn pick_next(&mut self, core: CoreId, candidates: &[VcpuId]) -> Option<VcpuId> {
        // Punished vCPUs cannot use the processor at all — this is the
        // enforcement lever of the whole mechanism, so it is *not*
        // work-conserving for them.
        let mut filtered: Vec<VcpuId> = candidates
            .iter()
            .copied()
            .filter(|vcpu| !self.is_punished(*vcpu))
            .collect();

        // During a socket-dedication sampling window, socket 0 is reserved
        // for the sampled vCPU and everyone else is pushed to the other
        // socket(s).
        if let Some(target) = self.sampler.as_ref().and_then(|s| s.sampling_target()) {
            if self.socket_of_core(core) == 0 {
                filtered.retain(|&v| v == target);
            } else {
                filtered.retain(|&v| v != target);
            }
        }

        self.inner.pick_next(core, &filtered)
    }

    fn set_runnable(&mut self, vcpu: VcpuId, runnable: bool) {
        // Blocked vCPUs leave the sampling rotation for as long as they
        // sleep: dedicating the socket to a parked vCPU would measure an
        // empty window, and the abort path frees a window already open.
        // Their quota accounting freezes with them (see `on_tick`).
        if runnable {
            self.blocked.remove(&vcpu);
        } else {
            self.blocked.insert(vcpu);
        }
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.set_blocked(vcpu, !runnable);
        }
        self.inner.set_runnable(vcpu, runnable);
    }

    fn account(&mut self, vcpu: VcpuId, report: &TickReport) {
        let (attributed_misses, new_estimate) = self.attribute(vcpu, report);
        if let Some(estimate) = new_estimate {
            let entry = self.estimates.entry(vcpu).or_insert(estimate);
            // Light exponential smoothing keeps the estimate stable across
            // ticks without hiding workload phase changes.
            *entry = 0.5 * *entry + 0.5 * estimate;
        }
        if let Some(quota) = self.quotas.get_mut(&vcpu) {
            quota.debit(attributed_misses);
        }
        self.inner.account(vcpu, report);
    }

    fn on_tick(&mut self, tick: u64) {
        self.inner.on_tick(tick);
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.on_tick(&self.estimates);
        }
        if (tick + 1).is_multiple_of(u64::from(self.config.ticks_per_slice)) {
            let slice_ms = self.config.slice_ms();
            for (vcpu, quota) in self.quotas.iter_mut() {
                // A Blocked vCPU's quota stands still: no earnings accrue
                // while it sleeps, so a punished VM cannot serve out its
                // punishment — nor bank fresh budget — by blocking.
                if !self.blocked.contains(vcpu) {
                    quota.earn(slice_ms);
                }
            }
        }
    }

    fn priority(&self, vcpu: VcpuId) -> Priority {
        if self.is_punished(vcpu) {
            Priority::Over
        } else {
            self.inner.priority(vcpu)
        }
    }

    fn punishments(&self, vcpu: VcpuId) -> u64 {
        self.quotas.get(&vcpu).map(|q| q.punishments()).unwrap_or(0)
    }

    fn overrides(&self, vcpu: VcpuId) -> ExecOverrides {
        let force_remote = self
            .sampler
            .as_ref()
            .map(|s| s.is_migrated(vcpu))
            .unwrap_or(false);
        ExecOverrides { force_remote }
    }

    fn name(&self) -> &'static str {
        match self.inner.name() {
            "xcs" => "ks4xen",
            "cfs" => "ks4linux",
            "pisces" => "ks4pisces",
            _ => "kyoto",
        }
    }
}

/// Builds a KS4Xen scheduler sized for `machine`.
pub fn ks4xen(
    machine: &MachineConfig,
    hypervisor: &HypervisorConfig,
    strategy: MonitoringStrategy,
) -> Ks4Xen {
    let credit = CreditScheduler::new(CreditConfig::new(
        machine.num_cores(),
        machine.freq_khz * hypervisor.tick_ms,
        hypervisor.ticks_per_slice,
    ));
    KyotoScheduler::new(
        credit,
        KyotoConfig::from_machine(machine, hypervisor, strategy),
    )
}

/// Builds a KS4Linux scheduler sized for `machine`.
pub fn ks4linux(
    machine: &MachineConfig,
    hypervisor: &HypervisorConfig,
    strategy: MonitoringStrategy,
) -> Ks4Linux {
    let cfs = CfsScheduler::new(CfsConfig::new(
        machine.freq_khz * hypervisor.tick_ms,
        hypervisor.ticks_per_slice,
    ));
    KyotoScheduler::new(
        cfs,
        KyotoConfig::from_machine(machine, hypervisor, strategy),
    )
}

/// Builds a KS4Pisces scheduler sized for `machine`.
pub fn ks4pisces(
    machine: &MachineConfig,
    hypervisor: &HypervisorConfig,
    strategy: MonitoringStrategy,
) -> Ks4Pisces {
    let pisces = PiscesScheduler::new(machine.num_cores());
    KyotoScheduler::new(
        pisces,
        KyotoConfig::from_machine(machine, hypervisor, strategy),
    )
}

/// Builds a complete Kyoto-enabled Xen hypervisor (KS4Xen) for `machine`.
pub fn ks4xen_hypervisor(
    machine: Machine,
    hypervisor: HypervisorConfig,
    strategy: MonitoringStrategy,
) -> Hypervisor<Ks4Xen> {
    let scheduler = ks4xen(machine.config(), &hypervisor, strategy);
    Hypervisor::new(machine, scheduler, hypervisor)
}

/// Builds a complete Kyoto-enabled KVM hypervisor (KS4Linux) for `machine`.
pub fn ks4linux_hypervisor(
    machine: Machine,
    hypervisor: HypervisorConfig,
    strategy: MonitoringStrategy,
) -> Hypervisor<Ks4Linux> {
    let scheduler = ks4linux(machine.config(), &hypervisor, strategy);
    Hypervisor::new(machine, scheduler, hypervisor)
}

/// Builds a complete Kyoto-enabled Pisces system (KS4Pisces) for `machine`.
pub fn ks4pisces_hypervisor(
    machine: Machine,
    hypervisor: HypervisorConfig,
    strategy: MonitoringStrategy,
) -> Hypervisor<Ks4Pisces> {
    let scheduler = ks4pisces(machine.config(), &hypervisor, strategy);
    Hypervisor::new(machine, scheduler, hypervisor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyoto_sim::pmc::PmcSet;

    fn config(strategy: MonitoringStrategy) -> KyotoConfig {
        KyotoConfig::from_machine(
            &MachineConfig::scaled_paper_machine(64),
            &HypervisorConfig::default(),
            strategy,
        )
    }

    fn scheduler(strategy: MonitoringStrategy) -> Ks4Xen {
        ks4xen(
            &MachineConfig::scaled_paper_machine(64),
            &HypervisorConfig::default(),
            strategy,
        )
    }

    fn vcpu(vm: u16) -> VcpuId {
        VcpuId::new(VmId(vm), 0)
    }

    fn polluting_report(misses: u64, cycles: u64) -> TickReport {
        TickReport {
            consumed_cycles: cycles,
            budget_cycles: cycles,
            pmc_delta: PmcSet {
                instructions: cycles / 4,
                unhalted_core_cycles: cycles,
                llc_references: misses * 2,
                llc_misses: misses,
                memory_accesses: misses * 3,
                ..PmcSet::default()
            },
            pollution_events: misses / 2,
            shadow_llc_misses: None,
            tick_ms: 10,
        }
    }

    #[test]
    fn vm_without_permit_is_never_punished() {
        let mut s = scheduler(MonitoringStrategy::DirectPmc);
        s.add_vcpu(vcpu(1), &VmConfig::new("legacy"));
        s.account(vcpu(1), &polluting_report(1_000_000, 400_000));
        assert!(!s.is_punished(vcpu(1)));
        assert_eq!(s.punishments(vcpu(1)), 0);
        assert_eq!(s.quota(vcpu(1)), None);
    }

    #[test]
    fn exceeding_the_permit_triggers_punishment_and_recovery() {
        let mut s = scheduler(MonitoringStrategy::DirectPmc);
        // Permit of 100 misses/ms; slice = 30 ms => 3000 misses per slice.
        s.add_vcpu(vcpu(1), &VmConfig::new("polluter").with_llc_cap(100.0));
        // One tick with 50k misses blows through the quota.
        s.account(vcpu(1), &polluting_report(50_000, 400_000));
        assert!(s.is_punished(vcpu(1)));
        assert_eq!(s.priority(vcpu(1)), Priority::Over);
        assert_eq!(s.punishments(vcpu(1)), 1);
        // The punished vCPU is excluded from scheduling even as the only candidate.
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), None);
        // Earning quota at slice boundaries eventually releases it.
        for tick in 0..3 * 20 {
            s.on_tick(tick);
        }
        assert!(!s.is_punished(vcpu(1)));
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1)]), Some(vcpu(1)));
    }

    #[test]
    fn vm_within_its_permit_is_not_punished() {
        let mut s = scheduler(MonitoringStrategy::DirectPmc);
        // Generous permit: 10k misses/ms while the VM only produces 100/tick.
        s.add_vcpu(vcpu(1), &VmConfig::new("modest").with_llc_cap(10_000.0));
        for tick in 0..30 {
            s.account(vcpu(1), &polluting_report(100, 400_000));
            s.on_tick(tick);
        }
        assert!(!s.is_punished(vcpu(1)));
        assert_eq!(s.punishments(vcpu(1)), 0);
    }

    #[test]
    fn measured_llc_cap_tracks_equation_1() {
        let mut s = scheduler(MonitoringStrategy::DirectPmc);
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        let report = polluting_report(5_000, 437_500); // freq/64 = 43750 kHz
        s.account(vcpu(1), &report);
        let expected = llc_cap_act_from_pmcs(&report.pmc_delta, s.config().freq_khz);
        let measured = s.measured_llc_cap(vcpu(1)).unwrap();
        assert!((measured - expected).abs() < 1e-6);
    }

    #[test]
    fn simulator_strategy_uses_shadow_misses() {
        let mut s = scheduler(MonitoringStrategy::SimulatorAttribution);
        s.add_vcpu(vcpu(1), &VmConfig::new("victim").with_llc_cap(1_000.0));
        // Raw counters show 100k misses (inflated by contention) but the
        // shadow replay says the VM alone would only have missed 10 times.
        let mut report = polluting_report(100_000, 400_000);
        report.shadow_llc_misses = Some(10);
        s.account(vcpu(1), &report);
        assert!(
            !s.is_punished(vcpu(1)),
            "the VM must not be punished for contention-induced misses"
        );
        let estimate = s.measured_llc_cap(vcpu(1)).unwrap();
        let raw = llc_cap_act_from_pmcs(&report.pmc_delta, s.config().freq_khz);
        assert!(estimate < raw / 100.0);
    }

    #[test]
    fn direct_pmc_strategy_punishes_inflated_misses() {
        // The contrast with the previous test: without attribution the same
        // inflated counters do punish the VM.
        let mut s = scheduler(MonitoringStrategy::DirectPmc);
        s.add_vcpu(vcpu(1), &VmConfig::new("victim").with_llc_cap(1_000.0));
        let mut report = polluting_report(100_000, 400_000);
        report.shadow_llc_misses = Some(10);
        s.account(vcpu(1), &report);
        assert!(s.is_punished(vcpu(1)));
    }

    #[test]
    fn socket_dedication_reserves_socket_zero_for_the_target() {
        let dedication = SocketDedicationConfig {
            sampling_ticks: 5,
            interval_ticks: 1,
            ..SocketDedicationConfig::default()
        };
        let machine = MachineConfig::scaled_paper_numa_machine(64);
        let mut s = ks4xen(
            &machine,
            &HypervisorConfig::default(),
            MonitoringStrategy::SocketDedication(dedication),
        );
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        s.add_vcpu(vcpu(2), &VmConfig::new("b"));
        // Advance until a sampling window opens.
        s.on_tick(0);
        let target = s.sampler().unwrap().sampling_target().expect("window open");
        let other = if target == vcpu(1) { vcpu(2) } else { vcpu(1) };
        // Socket 0 cores only accept the target.
        assert_eq!(s.pick_next(CoreId(0), &[vcpu(1), vcpu(2)]), Some(target));
        assert_eq!(s.pick_next(CoreId(1), &[other]), None);
        // Socket 1 cores (cores 4..8 on the NUMA machine) only accept the others.
        assert_eq!(s.pick_next(CoreId(4), &[vcpu(1), vcpu(2)]), Some(other));
        // Migrated vCPUs pay remote-memory latency.
        assert!(s.overrides(other).force_remote);
        assert!(!s.overrides(target).force_remote);
    }

    #[test]
    fn socket_dedication_uses_stale_estimates_outside_windows() {
        let dedication = SocketDedicationConfig {
            sampling_ticks: 1,
            interval_ticks: 100,
            ..SocketDedicationConfig::default()
        };
        let machine = MachineConfig::scaled_paper_numa_machine(64);
        let mut s = ks4xen(
            &machine,
            &HypervisorConfig::default(),
            MonitoringStrategy::SocketDedication(dedication),
        );
        s.add_vcpu(vcpu(1), &VmConfig::new("a").with_llc_cap(1_000_000.0));
        // Before any sampling the raw counters are used (fallback).
        s.account(vcpu(1), &polluting_report(100, 437_500));
        assert!(s.measured_llc_cap(vcpu(1)).is_some());
        let before = s.measured_llc_cap(vcpu(1)).unwrap();
        // Outside a window, a wildly different raw value does not move the
        // estimate (it is attributed from the stored rate instead).
        s.account(vcpu(1), &polluting_report(1_000_000, 437_500));
        let after = s.measured_llc_cap(vcpu(1)).unwrap();
        assert!((after - before).abs() < 1e-9);
    }

    #[test]
    fn permits_can_be_rebooked_at_runtime() {
        let mut s = scheduler(MonitoringStrategy::DirectPmc);
        s.add_vcpu(vcpu(1), &VmConfig::new("a"));
        assert_eq!(s.quota(vcpu(1)), None);
        s.set_vm_permit(VmId(1), LlcCap::kilo(50.0));
        assert!(s.quota(vcpu(1)).is_some());
        assert_eq!(s.quota(vcpu(1)).unwrap().booked().misses_per_ms(), 50_000.0);
        s.clear_vm_permit(VmId(1));
        assert_eq!(s.quota(vcpu(1)), None);
    }

    #[test]
    fn scheduler_names_reflect_the_substrate() {
        let machine = MachineConfig::scaled_paper_machine(64);
        let hv = HypervisorConfig::default();
        assert_eq!(
            ks4xen(&machine, &hv, MonitoringStrategy::DirectPmc).name(),
            "ks4xen"
        );
        assert_eq!(
            ks4linux(&machine, &hv, MonitoringStrategy::DirectPmc).name(),
            "ks4linux"
        );
        assert_eq!(
            ks4pisces(&machine, &hv, MonitoringStrategy::DirectPmc).name(),
            "ks4pisces"
        );
    }

    #[test]
    fn removing_a_vcpu_clears_its_kyoto_state() {
        let mut s = scheduler(MonitoringStrategy::DirectPmc);
        s.add_vcpu(vcpu(1), &VmConfig::new("a").with_llc_cap(10.0));
        s.account(vcpu(1), &polluting_report(100, 400_000));
        s.remove_vcpu(vcpu(1));
        assert_eq!(s.quota(vcpu(1)), None);
        assert_eq!(s.measured_llc_cap(vcpu(1)), None);
    }

    #[test]
    fn config_slice_duration() {
        let c = config(MonitoringStrategy::DirectPmc);
        assert_eq!(c.slice_ms(), 30.0);
    }

    #[test]
    fn quota_state_is_independent_of_registration_order() {
        // The quota-earn fold at slice boundaries and the sampler's estimate
        // walk iterate the quota/estimate maps; both are BTreeMaps so two
        // fleets registered in opposite orders stay bit-identical.
        let vms = [(5u16, 80.0), (1, 40.0), (3, 120.0), (2, 60.0)];
        let mut forward = scheduler(MonitoringStrategy::DirectPmc);
        for &(vm, cap) in &vms {
            forward.add_vcpu(vcpu(vm), &VmConfig::new("p").with_llc_cap(cap));
        }
        let mut reverse = scheduler(MonitoringStrategy::DirectPmc);
        for &(vm, cap) in vms.iter().rev() {
            reverse.add_vcpu(vcpu(vm), &VmConfig::new("p").with_llc_cap(cap));
        }
        for tick in 0..3 * 20u64 {
            for &(vm, _) in &vms {
                let charge = polluting_report(u64::from(vm) * 500, 400_000);
                forward.account(vcpu(vm), &charge);
                reverse.account(vcpu(vm), &charge);
            }
            forward.on_tick(tick);
            reverse.on_tick(tick);
        }
        for &(vm, _) in &vms {
            assert_eq!(forward.punishments(vcpu(vm)), reverse.punishments(vcpu(vm)));
            assert_eq!(forward.is_punished(vcpu(vm)), reverse.is_punished(vcpu(vm)));
            let f = forward.quota(vcpu(vm)).map(|q| q.quota());
            let r = reverse.quota(vcpu(vm)).map(|q| q.quota());
            assert_eq!(f, r, "vcpu {vm} quota diverged on registration order");
        }
    }
}
