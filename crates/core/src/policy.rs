//! Provider-side permit policy (Section 5 of the paper).
//!
//! The paper answers "how does a user choose a VM's `llc_cap`?" by observing
//! that IaaS providers already sell a catalogue of instance types (Amazon
//! EC2 has 38 of them) and that a pollution permit can simply be attached to
//! each type, proportional to the memory assigned to the instance: a
//! memory-optimised R3 instance gets a much larger `llc_cap` than a
//! compute-optimised C3 instance of the same size.
//!
//! This module provides that catalogue plus a small billing helper, so the
//! `pollution_permits` example can show the full provider workflow.

use crate::permit::LlcCap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Families of bookable instance types, mirroring the EC2 families the paper
/// cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceFamily {
    /// General-purpose instances (balanced CPU/memory), e.g. EC2 M3.
    GeneralPurpose,
    /// Compute-optimised instances (lots of CPU, little memory), e.g. EC2 C3.
    ComputeOptimized,
    /// Memory-optimised instances (lots of memory per vCPU), e.g. EC2 R3.
    MemoryOptimized,
    /// HPC instances sold with strong performance-isolation guarantees.
    Hpc,
}

impl InstanceFamily {
    /// All families.
    pub const ALL: [InstanceFamily; 4] = [
        InstanceFamily::GeneralPurpose,
        InstanceFamily::ComputeOptimized,
        InstanceFamily::MemoryOptimized,
        InstanceFamily::Hpc,
    ];

    /// Gibibytes of memory per vCPU for this family.
    pub fn memory_gib_per_vcpu(&self) -> f64 {
        match self {
            InstanceFamily::GeneralPurpose => 4.0,
            InstanceFamily::ComputeOptimized => 2.0,
            InstanceFamily::MemoryOptimized => 8.0,
            InstanceFamily::Hpc => 4.0,
        }
    }

    /// Short family prefix used in instance-type names.
    pub fn prefix(&self) -> &'static str {
        match self {
            InstanceFamily::GeneralPurpose => "m3",
            InstanceFamily::ComputeOptimized => "c3",
            InstanceFamily::MemoryOptimized => "r3",
            InstanceFamily::Hpc => "h1",
        }
    }
}

impl fmt::Display for InstanceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// A bookable instance type: a family plus a size (number of vCPUs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// The family.
    pub family: InstanceFamily,
    /// Number of vCPUs.
    pub vcpus: u32,
}

impl InstanceType {
    /// Creates an instance type.
    pub fn new(family: InstanceFamily, vcpus: u32) -> Self {
        InstanceType {
            family,
            vcpus: vcpus.max(1),
        }
    }

    /// Total memory of the instance, in GiB.
    pub fn memory_gib(&self) -> f64 {
        self.family.memory_gib_per_vcpu() * f64::from(self.vcpus)
    }

    /// Conventional instance-type name, e.g. `r3.4x`.
    pub fn name(&self) -> String {
        format!("{}.{}x", self.family.prefix(), self.vcpus)
    }
}

/// The provider's permit catalogue: maps instance types to pollution permits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PermitCatalog {
    /// Pollution permit granted per GiB of instance memory, in misses/ms.
    pub permit_per_gib: f64,
    /// Price of one unit (1k misses/ms) of booked permit, in arbitrary
    /// currency per hour.
    pub price_per_kilo_permit_hour: f64,
    /// Base price of one vCPU-hour.
    pub price_per_vcpu_hour: f64,
}

impl Default for PermitCatalog {
    fn default() -> Self {
        PermitCatalog {
            // 25k misses/ms per GiB: an r3.4x (32 GiB) books 800k, a c3.4x
            // (8 GiB) books 200k — preserving the R3 >> C3 relation the paper
            // suggests.
            permit_per_gib: 25_000.0,
            price_per_kilo_permit_hour: 0.002,
            price_per_vcpu_hour: 0.05,
        }
    }
}

impl PermitCatalog {
    /// The permit attached to `instance`, proportional to its memory.
    pub fn permit_for(&self, instance: InstanceType) -> LlcCap {
        LlcCap::new(self.permit_per_gib * instance.memory_gib())
    }

    /// Hourly price of `instance`, including its pollution permit.
    pub fn hourly_price(&self, instance: InstanceType) -> f64 {
        let permit = self.permit_for(instance).misses_per_ms();
        f64::from(instance.vcpus) * self.price_per_vcpu_hour
            + permit / 1000.0 * self.price_per_kilo_permit_hour
    }

    /// Splits a bill between base compute and the pollution permit.
    pub fn bill(&self, instance: InstanceType, hours: f64) -> Bill {
        let compute = f64::from(instance.vcpus) * self.price_per_vcpu_hour * hours;
        let permit = self.permit_for(instance).misses_per_ms() / 1000.0
            * self.price_per_kilo_permit_hour
            * hours;
        Bill {
            instance,
            hours,
            compute_cost: compute,
            permit_cost: permit,
        }
    }
}

/// A priced booking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bill {
    /// What was booked.
    pub instance: InstanceType,
    /// For how long, in hours.
    pub hours: f64,
    /// Cost of the compute capacity.
    pub compute_cost: f64,
    /// Cost of the pollution permit.
    pub permit_cost: f64,
}

impl Bill {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.compute_cost + self.permit_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_optimised_instances_get_larger_permits_than_compute_optimised() {
        let catalog = PermitCatalog::default();
        let r3 = InstanceType::new(InstanceFamily::MemoryOptimized, 4);
        let c3 = InstanceType::new(InstanceFamily::ComputeOptimized, 4);
        assert!(
            catalog.permit_for(r3).misses_per_ms() > catalog.permit_for(c3).misses_per_ms() * 2.0,
            "R3 instances must book much more llc_cap than C3 instances (Section 5)"
        );
    }

    #[test]
    fn permits_scale_with_instance_size() {
        let catalog = PermitCatalog::default();
        let small = InstanceType::new(InstanceFamily::GeneralPurpose, 1);
        let large = InstanceType::new(InstanceFamily::GeneralPurpose, 8);
        assert!(
            (catalog.permit_for(large).misses_per_ms()
                - catalog.permit_for(small).misses_per_ms() * 8.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn bills_split_compute_and_permit_costs() {
        let catalog = PermitCatalog::default();
        let instance = InstanceType::new(InstanceFamily::Hpc, 4);
        let bill = catalog.bill(instance, 10.0);
        assert!(bill.compute_cost > 0.0);
        assert!(bill.permit_cost > 0.0);
        assert!((bill.total() - (bill.compute_cost + bill.permit_cost)).abs() < 1e-12);
        assert!((catalog.hourly_price(instance) * 10.0 - bill.total()).abs() < 1e-9);
    }

    #[test]
    fn instance_names_follow_the_ec2_convention() {
        assert_eq!(
            InstanceType::new(InstanceFamily::MemoryOptimized, 4).name(),
            "r3.4x"
        );
        assert_eq!(
            InstanceType::new(InstanceFamily::ComputeOptimized, 2).name(),
            "c3.2x"
        );
        assert_eq!(InstanceFamily::Hpc.to_string(), "h1");
        assert_eq!(InstanceType::new(InstanceFamily::Hpc, 0).vcpus, 1);
    }

    #[test]
    fn all_families_have_positive_memory() {
        for family in InstanceFamily::ALL {
            assert!(family.memory_gib_per_vcpu() > 0.0);
        }
    }
}
