//! Property-based tests of the Kyoto quota accounting and Equation 1.

use kyoto_core::equation::llc_cap_act;
use kyoto_core::permit::{LlcCap, PollutionQuota};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Equation 1 is linear in misses and inversely proportional to cycles.
    #[test]
    fn equation_1_scaling_laws(
        misses in 1u64..1_000_000,
        cycles in 1u64..1_000_000_000,
        freq in 1_000u64..10_000_000,
    ) {
        let base = llc_cap_act(misses, cycles, freq);
        let double_misses = llc_cap_act(misses * 2, cycles, freq);
        let double_cycles = llc_cap_act(misses, cycles * 2, freq);
        prop_assert!((double_misses - base * 2.0).abs() <= base * 1e-9 + 1e-9);
        prop_assert!((double_cycles - base / 2.0).abs() <= base * 1e-9 + 1e-9);
        prop_assert!(base >= 0.0);
    }

    /// The pollution quota state machine: the punished flag is exactly
    /// `quota < 0`, punishments only increase, and the banked quota never
    /// exceeds its cap.
    #[test]
    fn quota_state_machine_invariants(
        booked in 0.0f64..10_000.0,
        events in prop::collection::vec(prop_oneof![
            (0.0f64..50_000.0).prop_map(|m| (true, m)),   // debit of m misses
            (1.0f64..100.0).prop_map(|ms| (false, ms)),   // slice end of ms milliseconds
        ], 1..200),
    ) {
        let slice_ms = 30.0;
        let mut quota = PollutionQuota::new(LlcCap::new(booked), slice_ms);
        let mut last_punishments = 0;
        for &(is_debit, value) in &events {
            if is_debit {
                quota.debit(value);
            } else {
                quota.earn(value);
            }
            // Punished flag always mirrors the sign of the quota once it has
            // gone negative; a non-negative quota is never punished.
            if quota.quota() >= 0.0 {
                prop_assert!(!quota.is_punished());
            } else {
                prop_assert!(quota.is_punished());
            }
            prop_assert!(quota.punishments() >= last_punishments);
            last_punishments = quota.punishments();
            // Banked quota can never exceed the configured multiple of the
            // largest earn seen so far (2 x 100 ms worth at most here).
            prop_assert!(quota.quota() <= booked * 100.0 * 2.0 + booked * slice_ms + 1e-6);
        }
        prop_assert!(quota.total_debited() >= 0.0);
        prop_assert!(quota.total_earned() >= 0.0);
    }

    /// A VM that pollutes strictly less than it books is never punished.
    #[test]
    fn under_permit_vms_are_never_punished(
        booked in 100.0f64..10_000.0,
        ticks in 1usize..300,
    ) {
        let slice_ms = 30.0;
        let mut quota = PollutionQuota::new(LlcCap::new(booked), slice_ms);
        // Each tick is 10 ms and debits 80% of the per-tick allowance; every
        // third tick the slice ends and the quota is replenished.
        for tick in 0..ticks {
            quota.debit(booked * 10.0 * 0.8);
            if tick % 3 == 2 {
                quota.earn(slice_ms);
            }
            prop_assert!(!quota.is_punished(), "tick {tick}: quota {}", quota.quota());
        }
        prop_assert_eq!(quota.punishments(), 0);
    }

    /// Permit scaling is monotone and proportional.
    #[test]
    fn permit_scaling(paper in 0.0f64..1e9, scale in 1u64..1024) {
        let permit = LlcCap::new(paper);
        let scaled = permit.scaled(scale);
        prop_assert!(scaled.misses_per_ms() <= permit.misses_per_ms());
        prop_assert!((scaled.misses_per_ms() * scale as f64 - permit.misses_per_ms()).abs() < 1e-6 * permit.misses_per_ms().max(1.0));
    }
}
