//! Lifecycle regressions of the Kyoto mechanism: KS4Xen's quota and
//! punishment machinery must stand still for a Blocked vCPU, and the
//! socket-dedication sampler must never dedicate the socket to one.

use kyoto_core::ks4::ks4xen_hypervisor;
use kyoto_core::monitor::{MonitoringStrategy, SocketDedicationConfig};
use kyoto_hypervisor::hypervisor::HypervisorConfig;
use kyoto_hypervisor::lifecycle::VcpuState;
use kyoto_hypervisor::scheduler::Scheduler;
use kyoto_hypervisor::vm::{VcpuId, VmConfig};
use kyoto_sim::topology::{Machine, MachineConfig};
use kyoto_sim::workload::Workload;
use kyoto_workloads::interactive::Interactive;
use kyoto_workloads::spec::{SpecApp, SpecWorkload};

const SCALE: u64 = 256;

fn sleepy_workload(seed: u64) -> Box<dyn Workload> {
    // One short burst, then a WFI that no wake source ever ends.
    Box::new(Interactive::new(
        SpecWorkload::new(SpecApp::Lbm, SCALE, seed),
        48,
    ))
}

/// Regression: KS4Xen's quota must not advance — in either direction —
/// while a vCPU is Blocked. The sleeper books a permit of (almost)
/// nothing, so a single charged tick would drive its quota negative and
/// punish it; instead both its punishment count and its smoothed pollution
/// estimate freeze at their post-burst values, while the always-on
/// polluter with the same tight permit keeps collecting punishments.
#[test]
fn ks4xen_quota_and_punishments_freeze_while_a_vcpu_is_blocked() {
    let machine = Machine::new(MachineConfig::scaled_paper_machine(SCALE));
    let mut hv = ks4xen_hypervisor(
        machine,
        HypervisorConfig::default(),
        MonitoringStrategy::DirectPmc,
    );
    let tight = 1e-3;
    let sleepy = hv
        .add_vm_with(
            VmConfig::new("sleepy").with_llc_cap(tight),
            sleepy_workload(11),
        )
        .unwrap();
    let busy = hv
        .add_vm_with(
            VmConfig::new("busy").with_llc_cap(tight),
            Box::new(SpecWorkload::new(SpecApp::Lbm, SCALE, 12)),
        )
        .unwrap();
    let (sleepy, busy) = (VcpuId::new(sleepy, 0), VcpuId::new(busy, 0));

    // Let the burst run and the first slices settle.
    hv.run_ticks(6);
    assert_eq!(hv.vcpu_state(sleepy), Some(VcpuState::Blocked));
    let frozen_punishments = hv.scheduler().punishments(sleepy);
    let frozen_quota = hv.scheduler().quota(sleepy).unwrap().quota();
    let frozen_estimate = hv.scheduler().measured_llc_cap(sleepy);

    hv.run_ticks(30);
    assert_eq!(
        hv.scheduler().punishments(sleepy),
        frozen_punishments,
        "a sleeping vCPU cannot be punished further"
    );
    assert_eq!(
        hv.scheduler().quota(sleepy).unwrap().quota(),
        frozen_quota,
        "the quota neither earns nor debits during a WFI"
    );
    assert_eq!(
        hv.scheduler().measured_llc_cap(sleepy),
        frozen_estimate,
        "no execution, no new pollution evidence"
    );
    assert!(
        hv.scheduler().is_punished(busy),
        "the always-on polluter still overruns the same permit (sanity)"
    );
}

/// Pin for the sampler audit: under socket dedication a sleep-mostly
/// service never becomes the sampling target — windows go to the
/// always-on VMs, whose solo-rate estimates materialise, while the
/// sleeper (parked since its first burst) is marked blocked in the
/// sampler and finishes the run without a measured estimate.
#[test]
fn sampling_windows_skip_blocked_vcpus_and_still_estimate_the_busy_ones() {
    let machine = Machine::new(MachineConfig::scaled_paper_numa_machine(SCALE));
    let strategy = MonitoringStrategy::SocketDedication(SocketDedicationConfig {
        sampling_ticks: 2,
        interval_ticks: 3,
        ..SocketDedicationConfig::default()
    });
    let mut hv = ks4xen_hypervisor(machine, HypervisorConfig::default(), strategy);
    let sleepy = hv
        .add_vm_with(VmConfig::new("sleepy"), sleepy_workload(21))
        .unwrap();
    let busy = hv
        .add_vm_with(
            VmConfig::new("busy"),
            Box::new(SpecWorkload::new(SpecApp::Lbm, SCALE, 22)),
        )
        .unwrap();
    let (sleepy, busy) = (VcpuId::new(sleepy, 0), VcpuId::new(busy, 0));

    hv.step_tick(); // The burst runs (seeding a raw estimate), then parks.
    let frozen_estimate = hv.scheduler().measured_llc_cap(sleepy);
    for _ in 0..40 {
        hv.step_tick();
        let sampler = hv.scheduler().sampler().expect("socket dedication");
        assert_ne!(
            sampler.sampling_target(),
            Some(sleepy),
            "the socket must never be dedicated to a sleeping vCPU"
        );
    }
    let sampler = hv.scheduler().sampler().unwrap();
    assert!(sampler.is_blocked(sleepy), "the block reached the sampler");
    assert!(!sampler.is_blocked(busy));
    assert!(sampler.samples_taken() > 0, "the busy vCPU was still sampled");
    assert_eq!(
        sampler.samples_skipped(),
        0,
        "passing over a sleeper is not a heuristic saving"
    );
    assert!(
        hv.scheduler().measured_llc_cap(busy).is_some(),
        "the always-on VM gets a solo-rate estimate"
    );
    assert_eq!(
        hv.scheduler().measured_llc_cap(sleepy),
        frozen_estimate,
        "the sleeper's estimate is frozen at its single pre-sleep tick"
    );
}
