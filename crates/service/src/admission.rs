//! SLA-aware admission: admit, queue or reject placement requests by
//! projected contention, not just free cores.
//!
//! The bare cluster's churn admission
//! ([`Cluster::admission_cell`](kyoto_cluster::cluster::Cluster::admission_cell))
//! answers one question:
//! *is there a free core anywhere?* A service front owes its customers a
//! better answer — a cell with a free core can still be a terrible home if
//! its resident polluters would flatten the newcomer (and the newcomer's
//! SLA with it). The [`AdmissionController`] therefore works on a
//! [`BoundaryView`]: per-cell free-core and **smoothed pollution** figures
//! derived from the last epoch's [`ClusterSnapshot`], updated locally as
//! the boundary's own admissions claim cores.
//!
//! Decisions are three-valued: **admit** onto a concrete cell, **queue**
//! into a bounded FIFO when no cell currently qualifies, or **reject**
//! with a typed [`AdmissionRejection`] when the queue is full too. Every
//! decision is a pure function of the view and the queue, which is what
//! lets the property tests demand bit-identical replays.

use kyoto_cluster::error::AdmissionRejection;
use kyoto_cluster::snapshot::{CellId, ClusterSnapshot};
use serde::{Deserialize, Serialize};

/// How the controller ranks and gates candidate cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Capacity only: any open cell with a free core qualifies. This is
    /// exactly the bare cluster's churn admission (most free cores, ties
    /// toward the lowest id), so sweeps can use it as the baseline.
    FreeCores,
    /// Capacity plus contention: a cell qualifies only while its smoothed
    /// pollution (LLC misses per CPU-millisecond, summed over residents)
    /// stays at or under `limit`. Among qualifying cells the ranking is
    /// the same as [`AdmissionPolicy::FreeCores`].
    ContentionAware {
        /// Per-cell pollution budget in misses per CPU-ms.
        limit: f64,
    },
}

impl AdmissionPolicy {
    /// Short label for tables and telemetry.
    pub fn label(&self) -> String {
        match self {
            AdmissionPolicy::FreeCores => "free-cores".to_string(),
            AdmissionPolicy::ContentionAware { limit } => format!("contention<={limit:.0}"),
        }
    }
}

/// Configuration of an [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// The gating policy.
    pub policy: AdmissionPolicy,
    /// Capacity of the admission queue; a request that can neither place
    /// nor queue is rejected.
    pub queue_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            policy: AdmissionPolicy::FreeCores,
            queue_capacity: 8,
        }
    }
}

/// What happened to one placement request at this boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionOutcome {
    /// Placed onto the cell, immediately.
    Admitted(CellId),
    /// Parked in the admission queue; it will be retried at every later
    /// boundary (FIFO) until capacity appears.
    Queued,
    /// Turned away: no qualifying cell and no queue space.
    Rejected(AdmissionRejection),
}

/// One cell's standing at the current epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellLoad {
    open: bool,
    free_cores: usize,
    pollution: f64,
}

/// Per-cell load figures the controller decides against, derived from a
/// [`ClusterSnapshot`] at the start of the boundary and updated locally as
/// admissions claim cores — so several placements in one boundary can
/// never overcommit a cell.
///
/// Pollution figures are the last epoch's smoothed estimates (the
/// scheduler's Equation-1 rates when the Kyoto monitor runs); admissions
/// within a boundary claim cores but do not alter pollution, which only
/// moves when the next epoch actually runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryView {
    cells: Vec<CellLoad>,
}

impl BoundaryView {
    /// Builds the view from a snapshot.
    pub fn of(snapshot: &ClusterSnapshot) -> Self {
        BoundaryView {
            cells: snapshot
                .cells
                .iter()
                .map(|cell| CellLoad {
                    open: cell.is_open(),
                    free_cores: cell.free_cores(),
                    pollution: cell.pollution_rate(),
                })
                .collect(),
        }
    }

    /// Records an admission onto `cell`, claiming one core.
    fn claim(&mut self, cell: CellId) {
        let load = &mut self.cells[cell.0];
        load.free_cores = load.free_cores.saturating_sub(1);
    }

    /// Free cores summed over open cells.
    pub fn open_free_cores(&self) -> usize {
        self.cells
            .iter()
            .filter(|load| load.open)
            .map(|load| load.free_cores)
            .sum()
    }
}

/// The SLA-aware admission controller: a gating policy plus the bounded
/// FIFO queue of deferred placement requests (stored as arrival indices,
/// so the queue is plain data and checkpoints verbatim).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionController {
    config: AdmissionConfig,
    queue: Vec<u64>,
}

impl AdmissionController {
    /// Creates a controller with an empty queue.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            queue: Vec::new(),
        }
    }

    /// Restores a controller from checkpointed state.
    pub fn from_parts(config: AdmissionConfig, queue: Vec<u64>) -> Self {
        AdmissionController { config, queue }
    }

    /// The controller configuration.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Arrival indices currently parked in the queue, FIFO order.
    pub fn queued(&self) -> &[u64] {
        &self.queue
    }

    /// Selects the cell a request would be placed on right now, or the
    /// typed reason none qualifies. Pure — does not touch the queue or
    /// the view.
    ///
    /// Ranking among qualifying cells: most free cores, ties toward the
    /// lowest id — identical to the bare cluster's churn admission, so
    /// under [`AdmissionPolicy::FreeCores`] the controller and
    /// `Cluster::admission_cell` always agree.
    pub fn select(&self, view: &BoundaryView) -> Result<CellId, AdmissionRejection> {
        let with_cores: Vec<usize> = (0..view.cells.len())
            .filter(|&c| view.cells[c].open && view.cells[c].free_cores > 0)
            .collect();
        if with_cores.is_empty() {
            return Err(AdmissionRejection::FleetSaturated);
        }
        let qualifying = match self.config.policy {
            AdmissionPolicy::FreeCores => with_cores.clone(),
            AdmissionPolicy::ContentionAware { limit } => with_cores
                .iter()
                .copied()
                .filter(|&c| view.cells[c].pollution <= limit)
                .collect(),
        };
        if qualifying.is_empty() {
            // Every cell with capacity is over budget; report the least
            // bad projection so the rejection is actionable. (FreeCores
            // never filters, so this arm only fires contention-aware.)
            let projected = with_cores
                .iter()
                .map(|&c| view.cells[c].pollution)
                .fold(f64::INFINITY, f64::min);
            return Err(match self.config.policy {
                AdmissionPolicy::ContentionAware { limit } => {
                    AdmissionRejection::ContentionOverBudget { projected, limit }
                }
                AdmissionPolicy::FreeCores => AdmissionRejection::FleetSaturated,
            });
        }
        qualifying
            .into_iter()
            .max_by_key(|&c| (view.cells[c].free_cores, std::cmp::Reverse(c)))
            .map(CellId)
            .ok_or(AdmissionRejection::FleetSaturated)
    }

    /// Decides one new placement request: admit (claiming a core in the
    /// view), queue, or reject. `index` is the request's arrival index;
    /// it is what gets parked when the decision is to queue.
    pub fn decide(&mut self, index: u64, view: &mut BoundaryView) -> AdmissionOutcome {
        match self.select(view) {
            Ok(cell) => {
                view.claim(cell);
                AdmissionOutcome::Admitted(cell)
            }
            Err(reason) => {
                if self.queue.len() < self.config.queue_capacity {
                    self.queue.push(index);
                    AdmissionOutcome::Queued
                } else {
                    AdmissionOutcome::Rejected(reason)
                }
            }
        }
    }

    /// Drains the front of the queue: pops and returns `(index, cell)`
    /// pairs while the head request can be placed, claiming cores in the
    /// view as it goes. Stops at the first head that cannot place —
    /// strict FIFO, so a queued request is never overtaken by a younger
    /// one (head-of-line blocking is the documented price). Queued
    /// requests are never re-rejected; they wait for capacity.
    pub fn drain_queue(&mut self, view: &mut BoundaryView) -> Vec<(u64, CellId)> {
        let mut admitted = Vec::new();
        while !self.queue.is_empty() {
            match self.select(view) {
                Ok(cell) => {
                    view.claim(cell);
                    admitted.push((self.queue.remove(0), cell));
                }
                Err(_) => break,
            }
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kyoto_cluster::snapshot::{CellSnapshot, VmSnapshot};

    fn vm(id: u32, pollution: f64) -> VmSnapshot {
        VmSnapshot {
            vm: kyoto_cluster::snapshot::FleetVmId(id),
            name: format!("fvm{id}"),
            pollution_rate: pollution,
            punishments: 0,
            instructions: 1,
            llc_misses: 1,
            ipc: 1.0,
            working_set_bytes: 4096,
            resident_lines: 0,
            blocked_fraction: 0.0,
        }
    }

    fn cell(id: usize, cores: usize, vms: Vec<VmSnapshot>) -> CellSnapshot {
        CellSnapshot {
            cell: CellId(id),
            cores,
            draining: false,
            down: false,
            vms,
        }
    }

    fn snapshot(cells: Vec<CellSnapshot>) -> ClusterSnapshot {
        ClusterSnapshot { epoch: 0, cells }
    }

    #[test]
    fn free_cores_ranks_by_capacity_then_id() {
        let controller = AdmissionController::new(AdmissionConfig::default());
        let view = BoundaryView::of(&snapshot(vec![
            cell(0, 4, vec![vm(1, 0.0), vm(2, 0.0)]),
            cell(1, 4, vec![vm(3, 0.0)]),
            cell(2, 4, vec![vm(4, 0.0)]),
        ]));
        assert_eq!(controller.select(&view), Ok(CellId(1)));
    }

    #[test]
    fn contention_gate_skips_polluted_cells() {
        let controller = AdmissionController::new(AdmissionConfig {
            policy: AdmissionPolicy::ContentionAware { limit: 10.0 },
            queue_capacity: 0,
        });
        let view = BoundaryView::of(&snapshot(vec![
            cell(0, 4, vec![vm(1, 50.0)]),
            cell(1, 4, vec![vm(2, 5.0), vm(3, 4.0)]),
        ]));
        // Cell 0 has more free cores but is over the 10.0 budget.
        assert_eq!(controller.select(&view), Ok(CellId(1)));
    }

    #[test]
    fn over_budget_everywhere_reports_least_bad_projection() {
        let controller = AdmissionController::new(AdmissionConfig {
            policy: AdmissionPolicy::ContentionAware { limit: 10.0 },
            queue_capacity: 0,
        });
        let view = BoundaryView::of(&snapshot(vec![
            cell(0, 4, vec![vm(1, 50.0)]),
            cell(1, 4, vec![vm(2, 20.0)]),
        ]));
        assert_eq!(
            controller.select(&view),
            Err(AdmissionRejection::ContentionOverBudget {
                projected: 20.0,
                limit: 10.0
            })
        );
    }

    #[test]
    fn saturated_fleet_is_saturated_under_both_policies() {
        for policy in [
            AdmissionPolicy::FreeCores,
            AdmissionPolicy::ContentionAware { limit: 10.0 },
        ] {
            let controller = AdmissionController::new(AdmissionConfig {
                policy,
                queue_capacity: 0,
            });
            let view = BoundaryView::of(&snapshot(vec![cell(0, 1, vec![vm(1, 0.0)])]));
            assert_eq!(
                controller.select(&view),
                Err(AdmissionRejection::FleetSaturated)
            );
        }
    }

    #[test]
    fn boundary_admissions_claim_cores() {
        let mut controller = AdmissionController::new(AdmissionConfig::default());
        let mut view = BoundaryView::of(&snapshot(vec![cell(0, 2, vec![]), cell(1, 1, vec![])]));
        let outcomes: Vec<_> = (0..4).map(|i| controller.decide(i, &mut view)).collect();
        assert_eq!(
            outcomes,
            vec![
                AdmissionOutcome::Admitted(CellId(0)),
                AdmissionOutcome::Admitted(CellId(0)),
                AdmissionOutcome::Admitted(CellId(1)),
                AdmissionOutcome::Queued,
            ]
        );
        assert_eq!(view.open_free_cores(), 0);
        assert_eq!(controller.queued(), &[3]);
    }

    #[test]
    fn full_queue_rejects_with_the_reason() {
        let mut controller = AdmissionController::new(AdmissionConfig {
            policy: AdmissionPolicy::FreeCores,
            queue_capacity: 1,
        });
        let mut view = BoundaryView::of(&snapshot(vec![cell(0, 0, vec![])]));
        assert_eq!(controller.decide(0, &mut view), AdmissionOutcome::Queued);
        assert_eq!(
            controller.decide(1, &mut view),
            AdmissionOutcome::Rejected(AdmissionRejection::FleetSaturated)
        );
    }

    #[test]
    fn queue_drains_fifo_and_stops_at_blocked_head() {
        let mut controller = AdmissionController::new(AdmissionConfig {
            policy: AdmissionPolicy::FreeCores,
            queue_capacity: 8,
        });
        let mut full = BoundaryView::of(&snapshot(vec![cell(0, 0, vec![])]));
        for index in 10..14 {
            assert_eq!(
                controller.decide(index, &mut full),
                AdmissionOutcome::Queued
            );
        }
        // Two cores free up: exactly the two oldest leave the queue.
        let mut partial = BoundaryView::of(&snapshot(vec![cell(0, 2, vec![])]));
        let admitted = controller.drain_queue(&mut partial);
        assert_eq!(admitted, vec![(10, CellId(0)), (11, CellId(0))]);
        assert_eq!(controller.queued(), &[12, 13]);
    }
}
