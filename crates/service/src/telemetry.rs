//! The publish side of the service: versioned per-epoch telemetry records.
//!
//! After every epoch the service publishes one [`TelemetryRecord`] onto an
//! append-only stream — the publish-subscribe half of the RDA/TANGO mold,
//! with the stream itself standing in for a broker: subscribers (the
//! `figures` scenario, the replay example, CI) read
//! [`TelemetryLog::records`] at their own pace, and a
//! [`ServiceRequest::QueryTelemetry`](crate::request::ServiceRequest::QueryTelemetry)
//! is simply a request/reply read of the latest record.
//!
//! # Record schema (version 1)
//!
//! Every record carries [`TELEMETRY_VERSION`]; consumers must check it and
//! refuse versions they do not know. Additive changes (new fields) bump
//! the version; field meaning never changes silently within a version.
//! Field-by-field:
//!
//! * `epoch` — the 0-based epoch the record closes;
//! * `vms` — VMs resident across the fleet at the boundary;
//! * `migrations` — **cumulative** planner moves since service start;
//! * `cells[]` — per-cell aggregates for the epoch (occupancy, free
//!   cores, drain/down flags, smoothed pollution in LLC misses per
//!   CPU-ms, instructions, LLC misses, Kyoto punishments);
//! * `admission` — the **cumulative** [`AdmissionLedger`];
//! * `faults` — **cumulative** [`FaultCounts`].
//!
//! [`TelemetryRecord::render`] emits a stable text form (fixed field
//! order, 3-decimal pollution) used by the byte-determinism CI gates.

use kyoto_cluster::faults::FaultCounts;
use kyoto_cluster::snapshot::CellId;
use serde::{Deserialize, Serialize};

/// Current telemetry record schema version.
pub const TELEMETRY_VERSION: u32 = 1;

/// Running totals of every admission decision the service has made.
///
/// The conservation invariant the property tests enforce:
/// `requested == admitted + rejected_saturated + rejected_contention +
/// queue_len` (every placement request is in exactly one bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionLedger {
    /// Placement requests received (trace `PlaceVm` plus synchronous
    /// `try_place` calls).
    pub requested: u64,
    /// Placements admitted onto a cell (immediately or from the queue).
    pub admitted: u64,
    /// Of `admitted`, how many waited in the queue first.
    pub admitted_from_queue: u64,
    /// Rejections because no open cell had a free core.
    pub rejected_saturated: u64,
    /// Rejections because every candidate cell was over the contention
    /// budget.
    pub rejected_contention: u64,
    /// Requests currently parked in the admission queue.
    pub queue_len: u64,
    /// High-water mark of `queue_len`.
    pub queue_peak: u64,
    /// `DepartVm` requests that removed a VM.
    pub departures_served: u64,
    /// `DepartVm` requests folded onto an empty fleet (no-ops).
    pub departures_noop: u64,
    /// `DrainCell` requests applied.
    pub drains: u64,
    /// `JoinCell` requests applied.
    pub joins: u64,
    /// `QueryTelemetry` requests served.
    pub queries: u64,
}

impl AdmissionLedger {
    /// Total rejections, any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_saturated + self.rejected_contention
    }

    /// Checks the conservation invariant; returns a description of the
    /// violation if any.
    pub fn verify_conservation(&self) -> Result<(), String> {
        let accounted = self.admitted + self.rejected() + self.queue_len;
        if self.requested == accounted {
            Ok(())
        } else {
            Err(format!(
                "admission ledger leaks requests: {} requested but {} accounted \
                 ({} admitted + {} rejected + {} queued)",
                self.requested,
                accounted,
                self.admitted,
                self.rejected(),
                self.queue_len
            ))
        }
    }
}

/// One cell's aggregates for one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTelemetry {
    /// The cell.
    pub cell: CellId,
    /// VMs resident at the epoch boundary.
    pub vms: u64,
    /// Cores not claimed by a resident VM.
    pub free_cores: u64,
    /// Whether the cell is draining for maintenance.
    pub draining: bool,
    /// Whether the cell is down after a crash.
    pub down: bool,
    /// Smoothed cell pollution: resident VMs' LLC misses per CPU-ms,
    /// summed (the scheduler's Equation-1 estimates when the Kyoto
    /// monitor runs).
    pub pollution_rate: f64,
    /// Instructions retired on the cell this epoch.
    pub instructions: u64,
    /// LLC misses on the cell this epoch.
    pub llc_misses: u64,
    /// Kyoto punishments inflicted on the cell this epoch.
    pub punishments: u64,
}

/// One published telemetry record: the fleet, the admission ledger and
/// the fault ledger as of one epoch boundary. See the module docs for the
/// field-by-field schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Schema version; always [`TELEMETRY_VERSION`] for records this
    /// crate builds.
    pub version: u32,
    /// The 0-based epoch this record closes.
    pub epoch: u64,
    /// VMs resident across the fleet at the boundary.
    pub vms: u64,
    /// Cumulative planner moves since service start.
    pub migrations: u64,
    /// Per-cell aggregates, in cell-id order.
    pub cells: Vec<CellTelemetry>,
    /// Cumulative admission ledger.
    pub admission: AdmissionLedger,
    /// Cumulative fault/recovery counts.
    pub faults: FaultCounts,
}

impl TelemetryRecord {
    /// Renders the record in its stable text form: one `epoch` header
    /// line, then one indented line per cell. Field order and float
    /// precision are fixed — CI byte-compares this output across engine
    /// configurations.
    pub fn render(&self) -> String {
        let a = &self.admission;
        let mut out = format!(
            "epoch {:>3} v{} vms={} mig={} req={} adm={} (q:{}) rej={}+{} queue={}/{} dep={}+{} drains={} joins={} queries={} crashes={}\n",
            self.epoch,
            self.version,
            self.vms,
            self.migrations,
            a.requested,
            a.admitted,
            a.admitted_from_queue,
            a.rejected_saturated,
            a.rejected_contention,
            a.queue_len,
            a.queue_peak,
            a.departures_served,
            a.departures_noop,
            a.drains,
            a.joins,
            a.queries,
            self.faults.crashes,
        );
        for cell in &self.cells {
            out.push_str(&format!(
                "  {} vms={} free={} drain={} down={} poll={:.3} instr={} miss={} punish={}\n",
                cell.cell,
                cell.vms,
                cell.free_cores,
                u8::from(cell.draining),
                u8::from(cell.down),
                cell.pollution_rate,
                cell.instructions,
                cell.llc_misses,
                cell.punishments,
            ));
        }
        out
    }
}

/// The reply to a [`QueryTelemetry`] request, answered from the **live
/// trace plane** when tracing is on: the admission counters are the
/// `service.*` mirrors in the cluster's [`TraceSink`](kyoto_cluster::TraceSink)
/// (refreshed at each epoch boundary — the same freshness as the published
/// stream) and `engine_cycles` is the fleet-wide sum of the per-cell
/// `cellN.engine.cycles` counters. With tracing off the admission fields
/// fall back to the in-memory ledger and `engine_cycles` is 0.
///
/// [`QueryTelemetry`]: crate::request::ServiceRequest::QueryTelemetry
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TelemetryQueryReply {
    /// Epochs the fleet had completed when the query was served.
    pub epoch: u64,
    /// Cumulative placement requests (ledger mirror).
    pub requested: u64,
    /// Cumulative admissions (ledger mirror).
    pub admitted: u64,
    /// Cumulative rejections, any reason (ledger mirror).
    pub rejected: u64,
    /// Cumulative `QueryTelemetry` requests served (ledger mirror).
    pub queries: u64,
    /// Fleet-wide simulated engine cycles, summed across cells from the
    /// live trace counters (0 when tracing is off).
    pub engine_cycles: u64,
}

impl TelemetryQueryReply {
    /// Renders the reply in a stable one-line text form (pinned by the
    /// service tests).
    pub fn render(&self) -> String {
        format!(
            "query epoch={} req={} adm={} rej={} queries={} cycles={}",
            self.epoch,
            self.requested,
            self.admitted,
            self.rejected,
            self.queries,
            self.engine_cycles,
        )
    }
}

/// The append-only record stream the service publishes onto.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetryLog {
    records: Vec<TelemetryRecord>,
}

impl TelemetryLog {
    /// An empty log.
    pub fn new() -> Self {
        TelemetryLog::default()
    }

    /// Restores a log from checkpointed records.
    pub fn from_records(records: Vec<TelemetryRecord>) -> Self {
        TelemetryLog { records }
    }

    /// Publishes one record.
    pub fn publish(&mut self, record: TelemetryRecord) {
        self.records.push(record);
    }

    /// Every record published so far, oldest first.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// The latest record — what a `QueryTelemetry` request replies with.
    pub fn latest(&self) -> Option<&TelemetryRecord> {
        self.records.last()
    }

    /// Renders the whole stream (concatenated [`TelemetryRecord::render`]).
    pub fn render(&self) -> String {
        self.records.iter().map(TelemetryRecord::render).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64) -> TelemetryRecord {
        TelemetryRecord {
            version: TELEMETRY_VERSION,
            epoch,
            vms: 3,
            migrations: 1,
            cells: vec![CellTelemetry {
                cell: CellId(0),
                vms: 3,
                free_cores: 1,
                draining: false,
                down: false,
                pollution_rate: 12.3456,
                instructions: 1000,
                llc_misses: 50,
                punishments: 2,
            }],
            admission: AdmissionLedger {
                requested: 5,
                admitted: 4,
                queue_len: 1,
                queue_peak: 2,
                ..AdmissionLedger::default()
            },
            faults: FaultCounts::default(),
        }
    }

    #[test]
    fn conservation_catches_leaks() {
        let mut ledger = AdmissionLedger {
            requested: 5,
            admitted: 3,
            rejected_saturated: 1,
            queue_len: 1,
            ..AdmissionLedger::default()
        };
        assert!(ledger.verify_conservation().is_ok());
        ledger.queue_len = 0;
        let err = ledger.verify_conservation().unwrap_err();
        assert!(err.contains("5 requested"), "{err}");
    }

    #[test]
    fn render_is_stable_and_pins_precision() {
        let text = record(7).render();
        assert!(text.starts_with("epoch   7 v1 vms=3"), "{text}");
        assert!(text.contains("poll=12.346"), "{text}");
        assert_eq!(record(7).render(), text);
    }

    #[test]
    fn log_publishes_in_order_and_serves_latest() {
        let mut log = TelemetryLog::new();
        assert!(log.latest().is_none());
        log.publish(record(0));
        log.publish(record(1));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.latest().map(|r| r.epoch), Some(1));
        assert_eq!(log.render(), record(0).render() + &record(1).render());
    }
}
