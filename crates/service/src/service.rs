//! The control-plane loop: a long-running service wrapping a [`Cluster`].
//!
//! [`FleetService`] is the RDA/TANGO-style front the related middleware
//! systems put on their device models: a **request/reply** side (trace
//! requests plus the synchronous [`FleetService::try_place`]) and a
//! **publish-subscribe** side (the per-epoch [`TelemetryLog`] stream).
//! One [`FleetService::run_epoch`] call serves one epoch boundary:
//!
//! 1. fetch the epoch's requests from the [`RequestTrace`];
//! 2. apply maintenance (`DrainCell`/`JoinCell`) and `DepartVm` requests
//!    in list order — capacity freed here is visible to admissions below;
//! 3. build the [`BoundaryView`] and drain the admission queue (FIFO:
//!    queued requests get first claim on freed capacity);
//! 4. decide each new `PlaceVm` request (admit / queue / reject) and
//!    serve each `QueryTelemetry` request;
//! 5. run the epoch on the cluster (serial or cell-parallel — the results
//!    are bit-identical either way);
//! 6. publish one [`TelemetryRecord`] and, every
//!    [`ServiceConfig::checkpoint_every`] epochs, take an automatic
//!    [`ServiceCheckpoint`].
//!
//! # Restart story
//!
//! A [`ServiceCheckpoint`] carries the deep fleet checkpoint (PR 6's
//! [`FleetCheckpoint`]) *plus* the service's own state: the trace, the
//! admission queue, the ledger, the telemetry published so far and the
//! next arrival index. [`FleetService::restore`] resumes mid-trace and
//! replays the remaining epochs **bit-identically** — the telemetry a
//! restored service publishes is byte-equal to what the original would
//! have published, which CI checks on every push.

use crate::admission::{AdmissionController, AdmissionOutcome, BoundaryView};
use crate::request::{RequestTrace, ServiceRequest};
use crate::telemetry::{
    AdmissionLedger, CellTelemetry, TelemetryLog, TelemetryQueryReply, TelemetryRecord,
    TELEMETRY_VERSION,
};
use kyoto_cluster::checkpoint::FleetCheckpoint;
use kyoto_cluster::cluster::Cluster;
use kyoto_cluster::error::{AdmissionRejection, ClusterError};
use kyoto_cluster::snapshot::{CellId, FleetVmId};
use kyoto_hypervisor::vm::VmConfig;
use kyoto_sim::workload::Workload;
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionConfig;

/// Spawns the configuration and workload of a placement, keyed by the
/// request's arrival index (monotonic across the service's lifetime,
/// queued and rejected requests included) — the same convention as
/// [`Cluster::run_epoch_with_events`], so the arrival stream is a pure
/// function of the index sequence and replays are deterministic.
pub type SpawnFn<'a> = &'a mut dyn FnMut(u64) -> (VmConfig, Box<dyn Workload>);

/// Configuration of a [`FleetService`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Admission policy and queue bound.
    pub admission: AdmissionConfig,
    /// Take an automatic [`ServiceCheckpoint`] every this many epochs
    /// (`None` disables auto-checkpointing). The latest one is held until
    /// [`FleetService::take_auto_checkpoint`] collects it.
    pub checkpoint_every: Option<u64>,
}

/// A restartable copy of the whole service at an epoch boundary: the deep
/// fleet checkpoint plus the service's own request-side state. Opaque by
/// design; [`FleetService::restore`] is the only consumer.
#[derive(Debug, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    fleet: FleetCheckpoint,
    trace: RequestTrace,
    config: ServiceConfig,
    queue: Vec<u64>,
    ledger: AdmissionLedger,
    records: Vec<TelemetryRecord>,
    next_request_index: u64,
}

impl ServiceCheckpoint {
    /// The epoch the checkpointed service had completed.
    pub fn epoch(&self) -> u64 {
        self.fleet.epoch()
    }
}

/// The long-running control plane: a [`Cluster`] behind a request/reply
/// and publish-subscribe front. See the module docs for the epoch
/// procedure.
pub struct FleetService {
    cluster: Cluster,
    trace: RequestTrace,
    config: ServiceConfig,
    controller: AdmissionController,
    ledger: AdmissionLedger,
    telemetry: TelemetryLog,
    next_request_index: u64,
    auto_checkpoint: Option<Box<ServiceCheckpoint>>,
    /// The reply served to the most recent `QueryTelemetry` request.
    /// Transient request/reply state — deliberately not checkpointed (a
    /// restored service has no outstanding replies).
    last_query: Option<TelemetryQueryReply>,
}

impl FleetService {
    /// Puts a service front on `cluster`, replaying `trace`.
    pub fn new(cluster: Cluster, trace: RequestTrace, config: ServiceConfig) -> Self {
        FleetService {
            cluster,
            trace,
            config,
            controller: AdmissionController::new(config.admission),
            ledger: AdmissionLedger::default(),
            telemetry: TelemetryLog::new(),
            next_request_index: 0,
            auto_checkpoint: None,
            last_query: None,
        }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &RequestTrace {
        &self.trace
    }

    /// The cumulative admission ledger.
    pub fn ledger(&self) -> &AdmissionLedger {
        &self.ledger
    }

    /// The reply served to the most recent `QueryTelemetry` request, if
    /// any were served yet (see [`TelemetryQueryReply`] for where the
    /// numbers come from).
    pub fn last_query(&self) -> Option<&TelemetryQueryReply> {
        self.last_query.as_ref()
    }

    /// Answers a `QueryTelemetry` request. With tracing on, the answer
    /// comes from the **live trace plane**: the `service.*` counter
    /// mirrors in the cluster sink plus the fleet-wide sum of per-cell
    /// `engine.cycles` counters. With tracing off it falls back to the
    /// in-memory ledger (cycles 0).
    pub fn query_telemetry(&self) -> TelemetryQueryReply {
        let sink = self.cluster.trace();
        if sink.is_enabled() {
            TelemetryQueryReply {
                epoch: self.cluster.epoch(),
                requested: sink.counter_value("service.requested"),
                admitted: sink.counter_value("service.admitted"),
                rejected: sink.counter_value("service.rejected"),
                queries: sink.counter_value("service.queries"),
                engine_cycles: sink.sum_counters_with_suffix(".engine.cycles"),
            }
        } else {
            TelemetryQueryReply {
                epoch: self.cluster.epoch(),
                requested: self.ledger.requested,
                admitted: self.ledger.admitted,
                rejected: self.ledger.rejected(),
                queries: self.ledger.queries,
                engine_cycles: 0,
            }
        }
    }

    /// The published telemetry stream (the subscribe side).
    pub fn telemetry(&self) -> &TelemetryLog {
        &self.telemetry
    }

    /// Epochs completed so far.
    pub fn epoch(&self) -> u64 {
        self.cluster.epoch()
    }

    /// Whether the trace has been replayed to its end.
    pub fn finished(&self) -> bool {
        self.cluster.epoch() >= self.trace.config().epochs
    }

    /// Serves one epoch boundary and runs the epoch; returns the record
    /// published for it. `spawn` supplies each admitted placement's
    /// configuration and workload, keyed by arrival index (see
    /// [`SpawnFn`]).
    ///
    /// # Errors
    ///
    /// Any [`ClusterError`] the underlying cluster surfaces (admission
    /// onto a hypervisor, event application, checkpointing). Admission
    /// *rejections* are not errors on this path — they are ledger
    /// entries.
    pub fn run_epoch(&mut self, spawn: SpawnFn<'_>) -> Result<&TelemetryRecord, ClusterError> {
        let epoch = self.cluster.epoch();
        let requests = self.trace.requests_for_epoch(epoch);
        let trace_on = self.cluster.trace().is_enabled();
        let admission_start = if trace_on {
            self.cluster.trace_cursor_bump()
        } else {
            0
        };

        // Pass 1: maintenance and departures, in request order. Capacity
        // freed here is what the queue drain below gets first claim on.
        for request in &requests {
            match *request {
                ServiceRequest::DrainCell(cell) => {
                    self.cluster.set_draining(cell, true)?;
                    self.ledger.drains += 1;
                    if trace_on {
                        let ts = self.cluster.trace_cursor_bump();
                        self.cluster.trace_mut().instant_with(
                            "service",
                            "service.drain",
                            ts,
                            format!("cell={}", cell.0),
                        );
                    }
                }
                ServiceRequest::JoinCell(cell) => {
                    self.cluster.set_draining(cell, false)?;
                    self.ledger.joins += 1;
                    if trace_on {
                        let ts = self.cluster.trace_cursor_bump();
                        self.cluster.trace_mut().instant_with(
                            "service",
                            "service.join",
                            ts,
                            format!("cell={}", cell.0),
                        );
                    }
                }
                ServiceRequest::DepartVm { pick } => {
                    let served = self.cluster.depart_vm(pick)?;
                    if served {
                        self.ledger.departures_served += 1;
                    } else {
                        self.ledger.departures_noop += 1;
                    }
                    if trace_on {
                        let ts = self.cluster.trace_cursor_bump();
                        self.cluster.trace_mut().instant_with(
                            "service",
                            "service.depart",
                            ts,
                            format!("served={}", u8::from(served)),
                        );
                    }
                }
                ServiceRequest::PlaceVm | ServiceRequest::QueryTelemetry => {}
            }
        }

        // Pass 2: admissions against a boundary-local view — queued
        // requests first (FIFO), then this epoch's new placements.
        let mut view = BoundaryView::of(&self.cluster.snapshot());
        for (index, cell) in self.controller.drain_queue(&mut view) {
            let (config, workload) = spawn(index);
            let vm = self.cluster.add_vm(cell, config, workload)?;
            self.ledger.admitted += 1;
            self.ledger.admitted_from_queue += 1;
            if trace_on {
                let ts = self.cluster.trace_cursor_bump();
                self.cluster.trace_mut().instant_with(
                    "service",
                    "service.place",
                    ts,
                    format!("req={index} vm={} cell={} from=queue", vm.0, cell.0),
                );
            }
        }
        for request in &requests {
            match *request {
                ServiceRequest::PlaceVm => {
                    let index = self.next_request_index;
                    self.next_request_index += 1;
                    self.ledger.requested += 1;
                    if trace_on {
                        let ts = self.cluster.trace_cursor_bump();
                        self.cluster.trace_mut().instant_with(
                            "service",
                            "service.request",
                            ts,
                            format!("req={index}"),
                        );
                    }
                    match self.controller.decide(index, &mut view) {
                        AdmissionOutcome::Admitted(cell) => {
                            let (config, workload) = spawn(index);
                            let vm = self.cluster.add_vm(cell, config, workload)?;
                            self.ledger.admitted += 1;
                            if trace_on {
                                let ts = self.cluster.trace_cursor_bump();
                                self.cluster.trace_mut().instant_with(
                                    "service",
                                    "service.admit",
                                    ts,
                                    format!("req={index} cell={}", cell.0),
                                );
                                let ts = self.cluster.trace_cursor_bump();
                                self.cluster.trace_mut().instant_with(
                                    "service",
                                    "service.place",
                                    ts,
                                    format!("req={index} vm={} cell={}", vm.0, cell.0),
                                );
                            }
                        }
                        AdmissionOutcome::Queued => {
                            if trace_on {
                                let ts = self.cluster.trace_cursor_bump();
                                self.cluster.trace_mut().instant_with(
                                    "service",
                                    "service.queue",
                                    ts,
                                    format!("req={index}"),
                                );
                            }
                        }
                        AdmissionOutcome::Rejected(reason) => {
                            self.count_rejection(reason);
                            if trace_on {
                                let ts = self.cluster.trace_cursor_bump();
                                self.cluster.trace_mut().instant_with(
                                    "service",
                                    "service.reject",
                                    ts,
                                    format!("req={index}"),
                                );
                            }
                        }
                    }
                }
                ServiceRequest::QueryTelemetry => {
                    // Request/reply read: answered from the live trace
                    // counters when tracing is on, the ledger otherwise
                    // (see [`FleetService::query_telemetry`]).
                    self.ledger.queries += 1;
                    if trace_on {
                        let ts = self.cluster.trace_cursor_bump();
                        let queries = self.ledger.queries;
                        self.cluster.trace_mut().instant_with(
                            "service",
                            "service.query",
                            ts,
                            format!("n={queries}"),
                        );
                    }
                    self.last_query = Some(self.query_telemetry());
                }
                _ => {}
            }
        }
        self.ledger.queue_len = self.controller.queued().len() as u64;
        self.ledger.queue_peak = self.ledger.queue_peak.max(self.ledger.queue_len);
        if trace_on {
            // Mirror the cumulative ledger into the trace plane (these
            // counters are what `query_telemetry` answers from) and close
            // the boundary's admission span.
            let ledger = self.ledger;
            let requests_served = requests.len();
            let admission_end = self.cluster.trace_cursor_bump();
            let trace = self.cluster.trace_mut();
            trace.counter_set_max("service.requested", ledger.requested);
            trace.counter_set_max("service.admitted", ledger.admitted);
            trace.counter_set_max("service.rejected", ledger.rejected());
            trace.counter_set_max("service.queries", ledger.queries);
            trace.counter_set_max("service.queue_peak", ledger.queue_peak);
            trace.span_with(
                "service",
                "service.admission",
                admission_start,
                admission_end - admission_start,
                format!("epoch={epoch} requests={requests_served}"),
            );
        }

        // Run the epoch, then publish.
        self.cluster.run_epoch()?;
        let record = self.build_record();
        self.telemetry.publish(record);
        if let Some(every) = self.config.checkpoint_every {
            if every > 0 && self.cluster.epoch().is_multiple_of(every) {
                self.auto_checkpoint = Some(Box::new(self.checkpoint()?));
            }
        }
        Ok(self.telemetry.latest().expect("just published"))
    }

    /// Replays the trace to its end.
    pub fn run_to_end(&mut self, spawn: SpawnFn<'_>) -> Result<(), ClusterError> {
        while !self.finished() {
            self.run_epoch(spawn)?;
        }
        Ok(())
    }

    /// The synchronous request/reply front: places one VM right now,
    /// outside the trace, bypassing the queue — callers holding a live
    /// connection get an immediate yes or no.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Rejected`] with the typed [`AdmissionRejection`]
    /// when no cell qualifies; other [`ClusterError`]s if the placement
    /// itself fails.
    pub fn try_place(
        &mut self,
        config: VmConfig,
        workload: Box<dyn Workload>,
    ) -> Result<(FleetVmId, CellId), ClusterError> {
        self.ledger.requested += 1;
        let view = BoundaryView::of(&self.cluster.snapshot());
        match self.controller.select(&view) {
            Ok(cell) => {
                let vm = self.cluster.add_vm(cell, config, workload)?;
                self.ledger.admitted += 1;
                if self.cluster.trace().is_enabled() {
                    let ts = self.cluster.trace_cursor_bump();
                    self.cluster.trace_mut().instant_with(
                        "service",
                        "service.place",
                        ts,
                        format!("vm={} cell={} from=sync", vm.0, cell.0),
                    );
                }
                Ok((vm, cell))
            }
            Err(reason) => {
                self.count_rejection(reason);
                if self.cluster.trace().is_enabled() {
                    let ts = self.cluster.trace_cursor_bump();
                    self.cluster
                        .trace_mut()
                        .instant("service", "service.reject", ts);
                }
                Err(ClusterError::Rejected { reason })
            }
        }
    }

    fn count_rejection(&mut self, reason: AdmissionRejection) {
        match reason {
            AdmissionRejection::FleetSaturated => self.ledger.rejected_saturated += 1,
            AdmissionRejection::ContentionOverBudget { .. } => self.ledger.rejected_contention += 1,
            // Future rejection reasons (the enum is non_exhaustive) are
            // still conserved: fold them into the saturation bucket.
            _ => self.ledger.rejected_saturated += 1,
        }
    }

    /// Builds the telemetry record for the epoch that just ran.
    fn build_record(&self) -> TelemetryRecord {
        let cores = self.cluster.cores_per_cell() as u64;
        let report = self.cluster.history().last();
        let cells: Vec<CellTelemetry> = report
            .map(|report| {
                report
                    .cells
                    .iter()
                    .map(|stats| CellTelemetry {
                        cell: stats.cell,
                        vms: stats.vms as u64,
                        free_cores: cores.saturating_sub(stats.vms as u64),
                        draining: stats.draining,
                        down: stats.down,
                        pollution_rate: stats.pollution_rate,
                        instructions: stats.instructions,
                        llc_misses: stats.llc_misses,
                        punishments: stats.punishments,
                    })
                    .collect()
            })
            .unwrap_or_default();
        TelemetryRecord {
            version: TELEMETRY_VERSION,
            epoch: self.cluster.epoch().saturating_sub(1),
            vms: cells.iter().map(|cell| cell.vms).sum(),
            migrations: self.cluster.total_migrations(),
            cells,
            admission: self.ledger,
            faults: self.cluster.total_faults(),
        }
    }

    /// Takes a restartable copy of the whole service: fleet, trace,
    /// queue, ledger and telemetry.
    ///
    /// # Errors
    ///
    /// Whatever [`Cluster::checkpoint`] surfaces (an uncloneable
    /// workload, typically).
    pub fn checkpoint(&self) -> Result<ServiceCheckpoint, ClusterError> {
        Ok(ServiceCheckpoint {
            fleet: self.cluster.checkpoint()?,
            trace: self.trace.clone(),
            config: self.config,
            queue: self.controller.queued().to_vec(),
            ledger: self.ledger,
            records: self.telemetry.records().to_vec(),
            next_request_index: self.next_request_index,
        })
    }

    /// Resumes a service from a checkpoint, mid-trace. The resumed
    /// service replays the remaining epochs bit-identically to the
    /// original (property-tested and CI-gated).
    pub fn restore(checkpoint: ServiceCheckpoint) -> FleetService {
        FleetService {
            cluster: Cluster::restore(checkpoint.fleet),
            trace: checkpoint.trace,
            config: checkpoint.config,
            controller: AdmissionController::from_parts(
                checkpoint.config.admission,
                checkpoint.queue,
            ),
            ledger: checkpoint.ledger,
            telemetry: TelemetryLog::from_records(checkpoint.records),
            next_request_index: checkpoint.next_request_index,
            auto_checkpoint: None,
            last_query: None,
        }
    }

    /// Collects the latest automatic checkpoint, if one was taken since
    /// the last collection (see [`ServiceConfig::checkpoint_every`]).
    pub fn take_auto_checkpoint(&mut self) -> Option<ServiceCheckpoint> {
        self.auto_checkpoint.take().map(|boxed| *boxed)
    }

    /// Checks every conservation invariant: the cluster's VM conservation
    /// plus the admission ledger's request conservation.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn verify_conservation(&self) -> Result<(), String> {
        self.cluster.verify_conservation()?;
        self.ledger.verify_conservation()
    }
}
