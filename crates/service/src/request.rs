//! The request front: typed control-plane requests and the replayable
//! trace that carries them.
//!
//! A [`RequestTrace`] is to the service what
//! [`EventSchedule`](kyoto_cluster::events::EventSchedule) is to the bare
//! cluster: a **stateless** generator — the requests of epoch `e` are a
//! pure function of `(seed, e)` via the same SplitMix64 per-epoch mixing —
//! plus scripted entries for maintenance and directed tests. The trace also
//! has a documented on-disk text format (see [`RequestTrace::render`] and
//! [`RequestTrace::parse`]) so a run can be archived, diffed and replayed
//! byte-identically by CI.
//!
//! # On-disk format (version 1)
//!
//! Line-oriented UTF-8 text. Blank lines and lines starting with `#` are
//! ignored. Directive lines come first, one `key value` pair per line:
//!
//! | directive       | meaning                                            |
//! |-----------------|----------------------------------------------------|
//! | `version 1`     | format version; must be the first directive        |
//! | `seed N`        | seed of the generated request streams              |
//! | `epochs N`      | trace length; replay stops at this epoch           |
//! | `place_rate X`  | expected `PlaceVm` requests per epoch (fractional) |
//! | `depart_rate X` | expected `DepartVm` requests per epoch             |
//! | `query_rate X`  | expected `QueryTelemetry` requests per epoch       |
//!
//! Scripted entries follow, in application order within their epoch:
//!
//! | entry                  | request                                     |
//! |------------------------|---------------------------------------------|
//! | `at E place`           | [`ServiceRequest::PlaceVm`]                 |
//! | `at E depart P`        | [`ServiceRequest::DepartVm`] with pick `P`  |
//! | `at E drain C`         | [`ServiceRequest::DrainCell`] of cell `C`   |
//! | `at E join C`          | [`ServiceRequest::JoinCell`] of cell `C`    |
//! | `at E query`           | [`ServiceRequest::QueryTelemetry`]          |
//!
//! [`RequestTrace::parse`] ∘ [`RequestTrace::render`] is the identity, and
//! `render` output is canonical (directives in the order above, scripted
//! entries in list order), so byte-comparing rendered traces is a valid
//! equality test.

use kyoto_cluster::events::draw_count;
use kyoto_cluster::snapshot::CellId;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Current on-disk trace format version.
pub const TRACE_VERSION: u32 = 1;

/// One control-plane request, addressed to the service at an epoch
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceRequest {
    /// Place a new VM. The admission controller answers admit, queue or
    /// reject; the workload itself is supplied by the replay harness's
    /// spawn function, keyed by the request's arrival index.
    PlaceVm,
    /// Terminate a VM. Like
    /// [`FleetEvent::VmDeparture`](kyoto_cluster::events::FleetEvent::VmDeparture),
    /// the request cannot name a VM id (the trace cannot know the
    /// population); it carries a raw `pick` folded onto the live
    /// population at apply time.
    DepartVm {
        /// Raw selector, folded as `pick % population` in fleet-id order.
        pick: u64,
    },
    /// Take a cell out of service: no further placements, resident VMs
    /// evacuated by the planner.
    DrainCell(CellId),
    /// Return a drained cell to service.
    JoinCell(CellId),
    /// Read the latest published telemetry record (request/reply; the
    /// record stream itself is the publish-subscribe side).
    QueryTelemetry,
}

/// Configuration of a [`RequestTrace`]: seeded request rates plus scripted
/// entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTraceConfig {
    /// Seed of the generated request streams.
    pub seed: u64,
    /// Trace length in epochs; replay stops here.
    pub epochs: u64,
    /// Expected `PlaceVm` requests per epoch (fractional rates are
    /// realised probabilistically but deterministically per epoch).
    pub place_rate: f64,
    /// Expected `DepartVm` requests per epoch.
    pub depart_rate: f64,
    /// Expected `QueryTelemetry` requests per epoch.
    pub query_rate: f64,
    /// Scripted `(epoch, request)` entries, applied in list order at their
    /// epoch's boundary before any generated request of that epoch.
    pub scripted: Vec<(u64, ServiceRequest)>,
}

impl RequestTraceConfig {
    /// A trace of the given seed and length with no request traffic.
    pub fn new(seed: u64, epochs: u64) -> Self {
        RequestTraceConfig {
            seed,
            epochs,
            place_rate: 0.0,
            depart_rate: 0.0,
            query_rate: 0.0,
            scripted: Vec::new(),
        }
    }

    /// Sets the expected `PlaceVm` requests per epoch.
    pub fn with_place_rate(mut self, rate: f64) -> Self {
        self.place_rate = rate.max(0.0);
        self
    }

    /// Sets the expected `DepartVm` requests per epoch.
    pub fn with_depart_rate(mut self, rate: f64) -> Self {
        self.depart_rate = rate.max(0.0);
        self
    }

    /// Sets the expected `QueryTelemetry` requests per epoch.
    pub fn with_query_rate(mut self, rate: f64) -> Self {
        self.query_rate = rate.max(0.0);
        self
    }

    /// Scripts a request at the given epoch boundary.
    pub fn with_scripted(mut self, epoch: u64, request: ServiceRequest) -> Self {
        self.scripted.push((epoch, request));
        self
    }
}

/// A deterministic, replayable stream of control-plane requests, indexed
/// by epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    config: RequestTraceConfig,
}

/// Why a trace file failed to parse. The offending line number (1-based)
/// is included where one exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The first directive is missing or is not `version 1`.
    UnsupportedVersion {
        /// What the version line said, verbatim (empty when absent).
        found: String,
    },
    /// A line matched no directive and no scripted-entry form.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending line, verbatim.
        text: String,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported trace version {found:?} (expected `version {TRACE_VERSION}` first)"
                )
            }
            TraceParseError::MalformedLine { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

impl RequestTrace {
    /// Creates a trace.
    pub fn new(config: RequestTraceConfig) -> Self {
        RequestTrace { config }
    }

    /// The trace configuration.
    pub fn config(&self) -> &RequestTraceConfig {
        &self.config
    }

    /// The requests of epoch `epoch`, in application order: scripted
    /// entries first (list order), then generated departures, placements
    /// and telemetry queries. Pure: two calls with the same epoch return
    /// the same list, and each epoch's stream is independent of which
    /// other epochs were queried (SplitMix64 per-epoch mixing, identical
    /// to [`EventSchedule`](kyoto_cluster::events::EventSchedule)).
    pub fn requests_for_epoch(&self, epoch: u64) -> Vec<ServiceRequest> {
        let mut requests: Vec<ServiceRequest> = self
            .config
            .scripted
            .iter()
            .filter(|(e, _)| *e == epoch)
            .map(|(_, request)| *request)
            .collect();
        let mut rng =
            SmallRng::seed_from_u64(self.config.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let departures = draw_count(&mut rng, self.config.depart_rate);
        for _ in 0..departures {
            let pick = rng.next_u64();
            requests.push(ServiceRequest::DepartVm { pick });
        }
        let places = draw_count(&mut rng, self.config.place_rate);
        for _ in 0..places {
            requests.push(ServiceRequest::PlaceVm);
        }
        let queries = draw_count(&mut rng, self.config.query_rate);
        for _ in 0..queries {
            requests.push(ServiceRequest::QueryTelemetry);
        }
        requests
    }

    /// Renders the trace in its canonical on-disk form (see the module
    /// docs for the format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# kyoto request trace\n");
        out.push_str(&format!("version {TRACE_VERSION}\n"));
        out.push_str(&format!("seed {}\n", self.config.seed));
        out.push_str(&format!("epochs {}\n", self.config.epochs));
        out.push_str(&format!("place_rate {}\n", self.config.place_rate));
        out.push_str(&format!("depart_rate {}\n", self.config.depart_rate));
        out.push_str(&format!("query_rate {}\n", self.config.query_rate));
        for (epoch, request) in &self.config.scripted {
            let entry = match request {
                ServiceRequest::PlaceVm => "place".to_string(),
                ServiceRequest::DepartVm { pick } => format!("depart {pick}"),
                ServiceRequest::DrainCell(cell) => format!("drain {}", cell.0),
                ServiceRequest::JoinCell(cell) => format!("join {}", cell.0),
                ServiceRequest::QueryTelemetry => "query".to_string(),
            };
            out.push_str(&format!("at {epoch} {entry}\n"));
        }
        out
    }

    /// Parses the on-disk form back into a trace.
    ///
    /// # Errors
    ///
    /// [`TraceParseError::UnsupportedVersion`] when the first directive is
    /// not `version 1`; [`TraceParseError::MalformedLine`] for any line
    /// that is neither a directive, a scripted entry, a comment nor blank.
    pub fn parse(text: &str) -> Result<RequestTrace, TraceParseError> {
        let mut config = RequestTraceConfig::new(0, 0);
        let mut saw_version = false;
        for (number, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let malformed = || TraceParseError::MalformedLine {
                line: number + 1,
                text: raw.to_string(),
            };
            let mut words = line.split_whitespace();
            let key = words.next().ok_or_else(malformed)?;
            if !saw_version {
                if key != "version" || words.next() != Some("1") || words.next().is_some() {
                    return Err(TraceParseError::UnsupportedVersion {
                        found: line.to_string(),
                    });
                }
                saw_version = true;
                continue;
            }
            match key {
                "seed" | "epochs" => {
                    let value: u64 = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(malformed)?;
                    if words.next().is_some() {
                        return Err(malformed());
                    }
                    if key == "seed" {
                        config.seed = value;
                    } else {
                        config.epochs = value;
                    }
                }
                "place_rate" | "depart_rate" | "query_rate" => {
                    let value: f64 = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(malformed)?;
                    if words.next().is_some() || !value.is_finite() || value < 0.0 {
                        return Err(malformed());
                    }
                    match key {
                        "place_rate" => config.place_rate = value,
                        "depart_rate" => config.depart_rate = value,
                        _ => config.query_rate = value,
                    }
                }
                "at" => {
                    let epoch: u64 = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(malformed)?;
                    let verb = words.next().ok_or_else(malformed)?;
                    let arg = words.next();
                    if words.next().is_some() {
                        return Err(malformed());
                    }
                    let request = match (verb, arg) {
                        ("place", None) => ServiceRequest::PlaceVm,
                        ("query", None) => ServiceRequest::QueryTelemetry,
                        ("depart", Some(pick)) => ServiceRequest::DepartVm {
                            pick: pick.parse().map_err(|_| malformed())?,
                        },
                        ("drain", Some(cell)) => ServiceRequest::DrainCell(CellId(
                            cell.parse().map_err(|_| malformed())?,
                        )),
                        ("join", Some(cell)) => {
                            ServiceRequest::JoinCell(CellId(cell.parse().map_err(|_| malformed())?))
                        }
                        _ => return Err(malformed()),
                    };
                    config.scripted.push((epoch, request));
                }
                _ => return Err(malformed()),
            }
        }
        if !saw_version {
            return Err(TraceParseError::UnsupportedVersion {
                found: String::new(),
            });
        }
        Ok(RequestTrace::new(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RequestTrace {
        RequestTrace::new(
            RequestTraceConfig::new(42, 16)
                .with_place_rate(1.5)
                .with_depart_rate(0.5)
                .with_query_rate(0.25)
                .with_scripted(3, ServiceRequest::DrainCell(CellId(1)))
                .with_scripted(5, ServiceRequest::JoinCell(CellId(1)))
                .with_scripted(0, ServiceRequest::PlaceVm)
                .with_scripted(2, ServiceRequest::DepartVm { pick: 7 })
                .with_scripted(6, ServiceRequest::QueryTelemetry),
        )
    }

    #[test]
    fn streams_are_pure_per_epoch() {
        let trace = sample();
        for epoch in 0..16 {
            assert_eq!(
                trace.requests_for_epoch(epoch),
                trace.requests_for_epoch(epoch),
                "epoch {epoch} stream must be pure"
            );
        }
    }

    #[test]
    fn epochs_are_independent_of_query_order() {
        let trace = sample();
        let forward: Vec<_> = (0..8).map(|e| trace.requests_for_epoch(e)).collect();
        let mut backward: Vec<_> = (0..8).rev().map(|e| trace.requests_for_epoch(e)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn scripted_entries_lead_their_epoch() {
        let trace = sample();
        assert_eq!(trace.requests_for_epoch(0)[0], ServiceRequest::PlaceVm);
        assert_eq!(
            trace.requests_for_epoch(3)[0],
            ServiceRequest::DrainCell(CellId(1))
        );
        assert_eq!(
            trace.requests_for_epoch(2)[0],
            ServiceRequest::DepartVm { pick: 7 }
        );
    }

    #[test]
    fn render_parse_round_trips() {
        let trace = sample();
        let text = trace.render();
        let parsed = RequestTrace::parse(&text).unwrap();
        assert_eq!(parsed, trace);
        // And render is canonical: render ∘ parse ∘ render == render.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let text = "# a trace\nversion 1\n\nseed 7\nepochs 4\n# mid comment\nat 1 drain 0\n";
        let trace = RequestTrace::parse(text).unwrap();
        assert_eq!(trace.config().seed, 7);
        assert_eq!(trace.config().epochs, 4);
        assert_eq!(
            trace.config().scripted,
            vec![(1, ServiceRequest::DrainCell(CellId(0)))]
        );
    }

    #[test]
    fn parse_rejects_bad_versions_and_lines() {
        assert!(matches!(
            RequestTrace::parse("version 2\n"),
            Err(TraceParseError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            RequestTrace::parse(""),
            Err(TraceParseError::UnsupportedVersion { .. })
        ));
        let err = RequestTrace::parse("version 1\nat x place\n").unwrap_err();
        assert!(matches!(
            err,
            TraceParseError::MalformedLine { line: 2, .. }
        ));
        assert!(err.to_string().contains("line 2"));
        assert!(RequestTrace::parse("version 1\nplace_rate -1\n").is_err());
        assert!(RequestTrace::parse("version 1\nat 1 depart\n").is_err());
        assert!(RequestTrace::parse("version 1\nat 1 place extra\n").is_err());
    }
}
