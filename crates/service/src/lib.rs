//! # kyoto-service — fleet-as-a-service control plane
//!
//! The related middleware systems (CERN's RDA, the ESRF TANGO toolkit)
//! are long-running *services*: a request/reply front and a
//! publish-subscribe telemetry stream over a device model. This crate
//! puts that front on the [`Cluster`](kyoto_cluster::cluster::Cluster) —
//! production traffic arrives as a request stream, not as a pre-seeded
//! schedule — while keeping the repo's core discipline: **every run is
//! deterministic and byte-replayable**.
//!
//! * [`request`] — typed [`request::ServiceRequest`]s and the replayable
//!   [`request::RequestTrace`]: seeded generators plus scripted entries,
//!   with a documented on-disk text format (version 1) that parses and
//!   renders round-trip;
//! * [`admission`] — the SLA-aware [`admission::AdmissionController`]:
//!   admit/queue/reject by projected per-cell contention (smoothed
//!   pollution from the snapshot, not just free cores), with a bounded
//!   FIFO queue and typed rejection reasons
//!   ([`AdmissionRejection`](kyoto_cluster::error::AdmissionRejection));
//! * [`telemetry`] — the versioned, schema-documented
//!   [`telemetry::TelemetryRecord`] stream (per-cell aggregates, the
//!   admission ledger, the fault ledger) that `figures --scenario
//!   service` consumes;
//! * [`service`] — the [`service::FleetService`] loop itself, whose
//!   restart story is PR 6's deep fleet checkpoint: auto-checkpoint
//!   every K epochs, resume mid-trace bit-identically.
//!
//! # Example: replay a trace and read the telemetry
//!
//! ```
//! use kyoto_cluster::cluster::{Cluster, ClusterConfig};
//! use kyoto_hypervisor::vm::VmConfig;
//! use kyoto_service::request::{RequestTrace, RequestTraceConfig};
//! use kyoto_service::service::{FleetService, ServiceConfig};
//! use kyoto_workloads::spec::{SpecApp, SpecWorkload};
//!
//! let cluster = Cluster::new(ClusterConfig::new(2, 256).with_epoch_ticks(4));
//! let trace = RequestTrace::new(
//!     RequestTraceConfig::new(42, 6)
//!         .with_place_rate(1.0)
//!         .with_depart_rate(0.25),
//! );
//! let mut service = FleetService::new(cluster, trace, ServiceConfig::default());
//! service
//!     .run_to_end(&mut |index| {
//!         (
//!             VmConfig::new(format!("req-{index}")),
//!             Box::new(SpecWorkload::new(SpecApp::Gcc, 256, index)) as _,
//!         )
//!     })
//!     .unwrap();
//! assert_eq!(service.telemetry().records().len(), 6);
//! service.verify_conservation().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod request;
pub mod service;
pub mod telemetry;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionOutcome, AdmissionPolicy};
pub use request::{RequestTrace, RequestTraceConfig, ServiceRequest, TraceParseError};
pub use service::{FleetService, ServiceCheckpoint, ServiceConfig};
pub use telemetry::{
    AdmissionLedger, CellTelemetry, TelemetryLog, TelemetryQueryReply, TelemetryRecord,
};
