//! Property-based tests of the control-plane service's claims:
//!
//! 1. admission decisions are **deterministic**: replaying the same trace
//!    twice (same service config, same spawn function) publishes
//!    byte-identical telemetry;
//! 2. the serial and cell-parallel engines are **bit-identical** under
//!    the service front too — replay(trace) byte-equals itself across
//!    `parallel_cells`;
//! 3. admission is **conservation-safe**: every requested VM ends in
//!    exactly one of placed / queued / rejected, and the cluster's own
//!    VM conservation holds, for any rates, policy and queue bound;
//! 4. a **mid-trace checkpoint/restore resumes bit-identically**: the
//!    telemetry a restored service publishes for the remaining epochs is
//!    byte-equal to the original's.

use kyoto_cluster::cluster::{Cluster, ClusterConfig};
use kyoto_cluster::snapshot::CellId;
use kyoto_hypervisor::vm::VmConfig;
use kyoto_service::admission::{AdmissionConfig, AdmissionPolicy};
use kyoto_service::request::{RequestTrace, RequestTraceConfig, ServiceRequest};
use kyoto_service::service::{FleetService, ServiceConfig};
use kyoto_sim::workload::Workload;
use kyoto_workloads::spec::{SpecApp, SpecWorkload};
use proptest::prelude::*;

const SCALE: u64 = 256;

/// The spawn function every replay in this suite shares: app and seed are
/// pure functions of the arrival index, so two replays of one trace see
/// identical arrival streams.
fn spawn(index: u64) -> (VmConfig, Box<dyn Workload>) {
    const APPS: [SpecApp; 4] = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
    let app = APPS[(index % APPS.len() as u64) as usize];
    (
        VmConfig::new(format!("req{index}-{}", app.name())),
        Box::new(SpecWorkload::new(app, SCALE, 0x5eed ^ index)),
    )
}

fn cluster(cells: usize, parallel: bool) -> Cluster {
    Cluster::new(
        ClusterConfig::new(cells, SCALE)
            .with_epoch_ticks(4)
            .with_parallel_cells(parallel),
    )
}

fn trace(seed: u64, epochs: u64, place: f64, depart: f64) -> RequestTrace {
    RequestTrace::new(
        RequestTraceConfig::new(seed, epochs)
            .with_place_rate(place)
            .with_depart_rate(depart)
            .with_query_rate(0.25)
            .with_scripted(2, ServiceRequest::DrainCell(CellId(0)))
            .with_scripted(4, ServiceRequest::JoinCell(CellId(0))),
    )
}

fn service_config(policy: AdmissionPolicy, queue_capacity: usize) -> ServiceConfig {
    ServiceConfig {
        admission: AdmissionConfig {
            policy,
            queue_capacity,
        },
        checkpoint_every: None,
    }
}

/// Replays `trace` to the end and returns the rendered telemetry stream.
fn replay(cells: usize, parallel: bool, trace: &RequestTrace, config: ServiceConfig) -> String {
    let mut service = FleetService::new(cluster(cells, parallel), trace.clone(), config);
    service.run_to_end(&mut spawn).unwrap();
    service.verify_conservation().unwrap();
    service.telemetry().render()
}

fn arb_policy() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::FreeCores),
        (5.0f64..500.0).prop_map(|limit| AdmissionPolicy::ContentionAware { limit }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Claims 1 + 2: the same trace replays byte-identically against a
    /// fresh cluster — and against the cell-parallel engine.
    #[test]
    fn replays_are_byte_identical_serial_and_parallel(
        seed in 0u64..1_000,
        cells in 2usize..4,
        place in 0.0f64..3.0,
        depart in 0.0f64..1.0,
        policy in arb_policy(),
        queue_capacity in 0usize..6,
    ) {
        let trace = trace(seed, 6, place, depart);
        let config = service_config(policy, queue_capacity);
        let serial = replay(cells, false, &trace, config);
        prop_assert_eq!(&serial, &replay(cells, false, &trace, config));
        prop_assert_eq!(&serial, &replay(cells, true, &trace, config));
    }

    /// Claim 3: request conservation holds for any trace shape — checked
    /// inside `replay` via `verify_conservation`, and re-checked here
    /// against the final record's ledger arithmetic.
    #[test]
    fn every_request_is_placed_queued_or_rejected(
        seed in 0u64..1_000,
        place in 0.0f64..4.0,
        depart in 0.0f64..2.0,
        policy in arb_policy(),
        queue_capacity in 0usize..4,
    ) {
        let trace = trace(seed, 8, place, depart);
        let mut service = FleetService::new(
            cluster(2, false),
            trace,
            service_config(policy, queue_capacity),
        );
        service.run_to_end(&mut spawn).unwrap();
        service.verify_conservation().unwrap();
        let ledger = *service.ledger();
        prop_assert_eq!(
            ledger.requested,
            ledger.admitted + ledger.rejected() + ledger.queue_len
        );
        prop_assert!(ledger.queue_len <= queue_capacity as u64);
        prop_assert!(ledger.queue_peak <= queue_capacity as u64);
        prop_assert!(ledger.admitted_from_queue <= ledger.admitted);
    }

    /// Claim 4: checkpoint mid-trace, keep running the original, restore
    /// the copy — both publish byte-identical telemetry for the remaining
    /// epochs.
    #[test]
    fn restored_service_resumes_bit_identically(
        seed in 0u64..1_000,
        place in 0.5f64..3.0,
        depart in 0.0f64..1.0,
        policy in arb_policy(),
    ) {
        let trace = trace(seed, 8, place, depart);
        let config = service_config(policy, 4);
        let mut original = FleetService::new(cluster(2, false), trace, config);
        for _ in 0..3 {
            original.run_epoch(&mut spawn).unwrap();
        }
        let checkpoint = original.checkpoint().unwrap();
        original.run_to_end(&mut spawn).unwrap();
        let mut restored = FleetService::restore(checkpoint);
        prop_assert_eq!(restored.epoch(), 3);
        restored.run_to_end(&mut spawn).unwrap();
        prop_assert_eq!(original.telemetry().render(), restored.telemetry().render());
        restored.verify_conservation().unwrap();
    }
}

/// The automatic checkpoint cadence: with `checkpoint_every: Some(2)` on
/// a 6-epoch trace, the last auto checkpoint is from epoch 6 and restores
/// to a finished service.
#[test]
fn auto_checkpoints_fire_on_cadence() {
    let trace = trace(7, 6, 1.0, 0.25);
    let config = ServiceConfig {
        admission: AdmissionConfig::default(),
        checkpoint_every: Some(2),
    };
    let mut service = FleetService::new(cluster(2, false), trace, config);
    service.run_epoch(&mut spawn).unwrap();
    assert!(
        service.take_auto_checkpoint().is_none(),
        "epoch 1 is off-cadence"
    );
    service.run_epoch(&mut spawn).unwrap();
    let auto = service
        .take_auto_checkpoint()
        .expect("epoch 2 is on-cadence");
    assert_eq!(auto.epoch(), 2);
    service.run_to_end(&mut spawn).unwrap();
    let last = service
        .take_auto_checkpoint()
        .expect("epoch 6 is on-cadence");
    assert_eq!(last.epoch(), 6);
    let restored = FleetService::restore(last);
    assert!(restored.finished());
    assert_eq!(restored.telemetry().render(), service.telemetry().render());
}

/// The synchronous front returns typed rejections once the fleet fills:
/// a 1-cell fleet accepts `cores` placements then rejects with
/// `FleetSaturated` folded into `ClusterError::Rejected`.
#[test]
fn try_place_rejects_with_typed_reasons_when_saturated() {
    use kyoto_cluster::error::{AdmissionRejection, ClusterError};
    let mut service = FleetService::new(
        cluster(1, false),
        RequestTrace::new(RequestTraceConfig::new(1, 1)),
        service_config(AdmissionPolicy::FreeCores, 0),
    );
    let cores = service.cluster().cores_per_cell();
    for i in 0..cores as u64 {
        let (config, workload) = spawn(i);
        service.try_place(config, workload).unwrap();
    }
    let (config, workload) = spawn(cores as u64);
    match service.try_place(config, workload) {
        Err(ClusterError::Rejected { reason }) => {
            assert_eq!(reason, AdmissionRejection::FleetSaturated)
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    service.verify_conservation().unwrap();
}

proptest! {
    // Each case replays three full services (untraced, traced serial,
    // traced cell-parallel); a few cases suffice because any divergence
    // is deterministic.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tracing is pure observability at the service layer too: with the
    /// trace plane on, the published telemetry stream stays byte-identical
    /// to an untraced replay — and the merged trace itself renders
    /// byte-identically across the serial and cell-parallel engines.
    #[test]
    fn tracing_leaves_telemetry_bytes_identical(
        seed in 0u64..1_000,
        place in 0.5f64..3.0,
        policy in arb_policy(),
    ) {
        use kyoto_cluster::TraceConfig;
        use kyoto_trace::TraceDoc;
        let requests = trace(seed, 6, place, 0.5);
        let config = service_config(policy, 4);
        let run = |trace_config: TraceConfig, parallel: bool| {
            let cluster = Cluster::new(
                ClusterConfig::new(2, SCALE)
                    .with_epoch_ticks(4)
                    .with_parallel_cells(parallel)
                    .with_trace(trace_config),
            );
            let mut service = FleetService::new(cluster, requests.clone(), config);
            service.run_to_end(&mut spawn).unwrap();
            service.verify_conservation().unwrap();
            let rendered = TraceDoc::from_sink(service.cluster().trace()).render();
            (service.telemetry().render(), rendered)
        };
        let (off_telemetry, off_trace) = run(TraceConfig::Off, false);
        let (on_telemetry, on_trace) = run(TraceConfig::On, false);
        let (par_telemetry, par_trace) = run(TraceConfig::On, true);
        prop_assert_eq!(&off_telemetry, &on_telemetry, "tracing must not change the telemetry bytes");
        prop_assert_eq!(&on_telemetry, &par_telemetry);
        prop_assert_eq!(&on_trace, &par_trace, "merged traces must not depend on cell parallelism");
        prop_assert!(TraceDoc::parse(&off_trace).unwrap().is_empty());
    }
}

/// `QueryTelemetry` requests are answered from the **live trace plane**
/// when tracing is on: the ledger mirrors in the cluster sink match the
/// in-memory ledger exactly, the fleet-wide cycle total is real, and the
/// reply's render is pinned. With tracing off the same call falls back to
/// the ledger with zero cycles.
#[test]
fn query_telemetry_answers_from_live_trace_counters() {
    use kyoto_cluster::TraceConfig;
    let requests = RequestTrace::new(
        RequestTraceConfig::new(11, 5)
            .with_place_rate(1.5)
            .with_query_rate(1.0),
    );
    let run = |trace_config: TraceConfig| {
        let cluster = Cluster::new(
            ClusterConfig::new(2, SCALE)
                .with_epoch_ticks(4)
                .with_trace(trace_config),
        );
        let mut service = FleetService::new(cluster, requests.clone(), ServiceConfig::default());
        service.run_to_end(&mut spawn).unwrap();
        service
    };

    let traced = run(TraceConfig::On);
    let ledger = *traced.ledger();
    assert!(ledger.queries > 0, "the trace must carry queries");
    let reply = traced.query_telemetry();
    assert_eq!(reply.epoch, 5);
    assert_eq!(reply.requested, ledger.requested);
    assert_eq!(reply.admitted, ledger.admitted);
    assert_eq!(reply.rejected, ledger.rejected());
    assert_eq!(reply.queries, ledger.queries);
    assert!(
        reply.engine_cycles > 0,
        "cycle totals come from the live per-cell engine counters"
    );
    assert_eq!(
        reply.render(),
        format!(
            "query epoch=5 req={} adm={} rej={} queries={} cycles={}",
            ledger.requested,
            ledger.admitted,
            ledger.rejected(),
            ledger.queries,
            reply.engine_cycles
        )
    );
    let last = traced.last_query().expect("queries were served");
    assert!(last.queries >= 1);

    let untraced = run(TraceConfig::Off);
    let fallback = untraced.query_telemetry();
    assert_eq!(fallback.requested, untraced.ledger().requested);
    assert_eq!(fallback.engine_cycles, 0, "no trace plane, no cycle totals");
    assert_eq!(
        *untraced.ledger(),
        ledger,
        "tracing must not change the ledger"
    );
}
