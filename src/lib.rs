//! # kyoto — reproduction of the Kyoto polluters-pay LLC mechanism
//!
//! This facade crate re-exports the full stack of the reproduction of
//! *"Mitigating performance unpredictability in the IaaS using the Kyoto
//! principle"* (Tchana et al., Middleware 2016):
//!
//! * [`sim`] — the micro-architectural substrate (caches, topology, PMCs,
//!   simulation engine);
//! * [`workloads`] — pointer-chase micro-benchmark, SPEC CPU2006-like
//!   profiles and the blockie contention kernel;
//! * [`hypervisor`] — VM model, Xen credit scheduler, CFS, Pisces co-kernel
//!   and the hypervisor run loop;
//! * [`core`] — the paper's contribution: pollution permits, Equation 1,
//!   pollution monitors and the KS4Xen / KS4Linux / KS4Pisces schedulers;
//! * [`cluster`] — fleet-scale simulation: many machines under one
//!   deterministic control plane, VM live migration and pollution-aware
//!   consolidation;
//! * [`service`] — the fleet-as-a-service control plane: replayable
//!   request traces, SLA-aware admission (admit/queue/reject by projected
//!   contention) and the versioned per-epoch telemetry stream;
//! * [`metrics`] — IPC, degradation, Kendall's tau, summary statistics;
//! * [`trace`] — the deterministic cycle-domain tracing + metrics plane:
//!   spans/counters/histograms in simulated time, text format v1 and
//!   Perfetto-loadable Chrome JSON export, and the `CycleProfile`
//!   flamegraph substitute (`figures --trace-out <path>`);
//! * [`experiments`] — one module per table/figure of the paper's
//!   evaluation, plus the beyond-paper `cloudscale`, `fleet` and
//!   `service` scenarios.
//!
//! See the `examples/` directory for runnable end-to-end scenarios,
//! `README.md` for the quickstart and scenario catalog, and `DESIGN.md`
//! for the architecture and the invariants every PR preserves.
//!
//! # Quickstart
//!
//! ```
//! use kyoto::core::ks4::ks4xen_hypervisor;
//! use kyoto::core::monitor::MonitoringStrategy;
//! use kyoto::hypervisor::{HypervisorConfig, VmConfig};
//! use kyoto::sim::topology::{CoreId, Machine, MachineConfig};
//! use kyoto::workloads::spec::{SpecApp, SpecWorkload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scale = 128;
//! let machine = Machine::new(MachineConfig::scaled_paper_machine(scale));
//! let mut cloud = ks4xen_hypervisor(
//!     machine,
//!     HypervisorConfig::default(),
//!     MonitoringStrategy::SimulatorAttribution,
//! );
//! cloud.engine_mut().enable_shadow_attribution()?;
//! let gcc = cloud.add_vm_with(
//!     VmConfig::new("gcc").pinned_to(vec![CoreId(0)]).with_llc_cap(2_000.0),
//!     Box::new(SpecWorkload::new(SpecApp::Gcc, scale, 1)),
//! )?;
//! cloud.run_ms(300);
//! assert!(cloud.report(gcc).expect("vm exists").pmcs.instructions > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kyoto_cluster as cluster;
pub use kyoto_core as core;
pub use kyoto_experiments as experiments;
pub use kyoto_hypervisor as hypervisor;
pub use kyoto_metrics as metrics;
pub use kyoto_service as service;
pub use kyoto_sim as sim;
pub use kyoto_trace as trace;
pub use kyoto_workloads as workloads;

/// The scale factor used by the examples: the paper's machine divided by 128
/// runs every scenario in seconds while preserving the contention behaviour.
pub const EXAMPLE_SCALE: u64 = 128;
