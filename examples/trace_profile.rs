//! Cycle-domain tracing: capture, profile and export a traced fleet run.
//!
//! Builds a two-cell cluster behind a `FleetService` front with the
//! `kyoto-trace` plane switched on, replays a seeded request trace, and
//! then works through everything the trace plane offers: the raw text
//! format v1 (and proof it parses back to the same document), the
//! `CycleProfile` rollup — count, total and self cycles per span name,
//! the flamegraph substitute — the live-counter telemetry query, and the
//! Chrome trace-event export that Perfetto opens directly. Every
//! timestamp is simulated time (engine cycles, cluster control cursor),
//! so rerunning this example reproduces the trace byte-for-byte.
//!
//! Run with: `cargo run --release --example trace_profile`

use kyoto::cluster::cluster::{Cluster, ClusterConfig};
use kyoto::cluster::TraceConfig;
use kyoto::hypervisor::VmConfig;
use kyoto::service::{FleetService, RequestTrace, RequestTraceConfig, ServiceConfig};
use kyoto::sim::workload::Workload;
use kyoto::trace::{to_chrome_json, validate_json, CycleProfile, TraceDoc};
use kyoto::workloads::spec::{SpecApp, SpecWorkload};
use kyoto::EXAMPLE_SCALE;

/// Arrival stream: a pure function of the request index, so every rerun
/// spawns byte-identical VMs.
fn spawn(index: u64) -> (VmConfig, Box<dyn Workload>) {
    let mix = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Mcf, SpecApp::Omnetpp];
    let app = mix[index as usize % mix.len()];
    (
        VmConfig::new(format!("req{index}-{}", app.name())),
        Box::new(SpecWorkload::new(app, EXAMPLE_SCALE, 0x7ace ^ index)),
    )
}

fn main() {
    // A two-cell fleet with the trace plane on: every cell engine records
    // batch spans and op/miss counters, the cluster records boundary
    // phases and migration/fault events, the service records the
    // request -> admission -> placement chain.
    let cluster = Cluster::new(
        ClusterConfig::new(2, EXAMPLE_SCALE)
            .with_epoch_ticks(3)
            .with_trace(TraceConfig::On),
    );
    let requests = RequestTrace::new(
        RequestTraceConfig::new(0x7ace, 6)
            .with_place_rate(1.5)
            .with_depart_rate(0.5)
            .with_query_rate(0.5),
    );
    let mut service = FleetService::new(cluster, requests, ServiceConfig::default());
    service.run_to_end(&mut spawn).expect("trace replay");

    // The merged document: cell sinks were drained into the cluster sink
    // in cell-id order at each epoch boundary, so serial and
    // cell-parallel runs produce the same bytes.
    let doc = TraceDoc::from_sink(service.cluster().trace());
    let text = doc.render();
    println!(
        "=== text format v1 (first 14 lines of {}) ===",
        text.lines().count()
    );
    for line in text.lines().take(14) {
        println!("{line}");
    }
    let reparsed = TraceDoc::parse(&text).expect("text format round-trips");
    assert_eq!(reparsed, doc);
    println!("\n[parse(render(doc)) == doc: the text format is lossless]");

    // The flamegraph substitute: cycles per span name, callees separated
    // out (`self`), sorted hottest-first.
    println!("\n=== cycle profile ===");
    print!("{}", CycleProfile::from_doc(&doc).render());

    // Telemetry answered straight from the live trace counters.
    let reply = service.query_telemetry();
    println!("\n=== live telemetry query ===");
    println!("{}", reply.render());

    // Perfetto: write this to a .json file (or use
    // `figures --scenario service --trace-out t.json`) and open it at
    // https://ui.perfetto.dev — spans land on per-track rows, instants
    // on the same timeline, all in simulated cycles.
    let json = to_chrome_json(&doc);
    validate_json(&json).expect("chrome export is valid JSON");
    println!(
        "\n=== chrome trace-event export (first 3 of {} lines) ===",
        json.lines().count()
    );
    for line in json.lines().take(3) {
        println!("{line}");
    }
}
