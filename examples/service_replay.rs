//! Fleet-as-a-service: a request trace replayed through the control plane.
//!
//! Builds a three-cell cluster behind a `FleetService` front, generates a
//! replayable request trace (seeded placements/departures plus a scripted
//! drain/join maintenance window), and serves it with contention-aware
//! admission. Prints the trace in its on-disk text format (and proves it
//! parses back), the per-epoch telemetry stream, and the admission ledger.
//! Finally it checkpoints mid-trace, restores a second service from the
//! checkpoint, finishes both, and shows their telemetry is byte-identical
//! — the restart story CI checks on every push.
//!
//! Run with: `cargo run --release --example service_replay`

use kyoto::cluster::cluster::{Cluster, ClusterConfig};
use kyoto::cluster::snapshot::CellId;
use kyoto::core::monitor::MonitoringStrategy;
use kyoto::hypervisor::VmConfig;
use kyoto::service::{
    AdmissionConfig, AdmissionPolicy, FleetService, RequestTrace, RequestTraceConfig,
    ServiceConfig, ServiceRequest,
};
use kyoto::sim::workload::Workload;
use kyoto::workloads::spec::{SpecApp, SpecWorkload};
use kyoto::EXAMPLE_SCALE;

/// The arrival stream: a pure function of the request's arrival index, so
/// the original service, the restored service and any replay all spawn
/// byte-identical VMs for the same trace.
fn spawn(index: u64) -> (VmConfig, Box<dyn Workload>) {
    let mix = [SpecApp::Gcc, SpecApp::Lbm, SpecApp::Omnetpp, SpecApp::Mcf];
    let app = mix[index as usize % mix.len()];
    (
        VmConfig::new(format!("req{index}-{}", app.name())).with_llc_cap(300.0),
        Box::new(SpecWorkload::new(app, EXAMPLE_SCALE, 0x5eed ^ index)),
    )
}

fn build_cluster() -> Cluster {
    let mut cluster = Cluster::new(
        ClusterConfig::new(3, EXAMPLE_SCALE)
            .with_epoch_ticks(6)
            .with_strategy(MonitoringStrategy::SimulatorAttribution),
    );
    // Two resident VMs per cell before the first request arrives.
    for i in 0..6 {
        let (config, workload) = spawn(1000 + i);
        cluster
            .add_vm(CellId(i as usize / 2), config, workload)
            .expect("seeding stays within cell capacity");
    }
    cluster
}

fn build_service() -> FleetService {
    let trace = RequestTrace::new(
        RequestTraceConfig::new(42, 8)
            .with_place_rate(1.5)
            .with_depart_rate(0.5)
            .with_query_rate(0.25)
            .with_scripted(2, ServiceRequest::DrainCell(CellId(2)))
            .with_scripted(5, ServiceRequest::JoinCell(CellId(2))),
    );
    let config = ServiceConfig {
        admission: AdmissionConfig {
            policy: AdmissionPolicy::ContentionAware { limit: 400.0 },
            queue_capacity: 4,
        },
        checkpoint_every: None,
    };
    FleetService::new(build_cluster(), trace, config)
}

fn main() {
    let mut service = build_service();

    // The trace's canonical on-disk form: version line, generator rates,
    // scripted entries. Anyone holding these bytes can replay the run.
    let rendered = service.trace().render();
    println!("request trace (on-disk format v1):\n{rendered}");
    let reparsed = RequestTrace::parse(&rendered).expect("canonical form parses");
    assert_eq!(reparsed.config(), service.trace().config());
    println!("(round-trips through RequestTrace::parse)\n");

    // Serve the first three epochs, then checkpoint mid-trace.
    for _ in 0..3 {
        service
            .run_epoch(&mut spawn)
            .expect("example run is fault-free");
    }
    let checkpoint = service.checkpoint().expect("workloads are cloneable");
    println!("checkpointed after epoch {}\n", checkpoint.epoch());

    // Finish the original and, independently, a service restored from the
    // checkpoint. Their telemetry must agree byte-for-byte.
    service
        .run_to_end(&mut spawn)
        .expect("example run is fault-free");
    let mut restored = FleetService::restore(checkpoint);
    restored
        .run_to_end(&mut spawn)
        .expect("restored run is fault-free");
    assert_eq!(
        service.telemetry().render(),
        restored.telemetry().render(),
        "a restored service must replay the remaining trace bit-identically"
    );

    println!("telemetry stream (schema v1, identical from both services):");
    print!("{}", service.telemetry().render());

    let ledger = service.ledger();
    println!(
        "\nadmission ledger: {} requested = {} admitted ({} via queue) + {} rejected + {} still queued",
        ledger.requested,
        ledger.admitted,
        ledger.admitted_from_queue,
        ledger.rejected(),
        ledger.queue_len,
    );
    service
        .verify_conservation()
        .expect("every request is admitted, queued or rejected — never lost");
    println!("conservation verified; restored replay was bit-identical");
}
