//! Provider-side workflow: selling pollution permits with instance types
//! (Section 5 of the paper) and enforcing them at runtime.
//!
//! The example shows the full loop:
//!
//! 1. the provider attaches an `llc_cap` to each instance type of its
//!    catalogue, proportional to the instance's memory;
//! 2. two customers book a memory-optimised and a compute-optimised
//!    instance, and the corresponding permits are configured on their VMs;
//! 3. the KS4Xen scheduler enforces the permits at runtime and the provider
//!    bills each booking, pollution permit included.
//!
//! Run with `cargo run --release --example pollution_permits`.

use kyoto::core::ks4::ks4xen_hypervisor;
use kyoto::core::monitor::MonitoringStrategy;
use kyoto::core::policy::{InstanceFamily, InstanceType, PermitCatalog};
use kyoto::hypervisor::{HypervisorConfig, VmConfig};
use kyoto::sim::topology::{CoreId, Machine, MachineConfig};
use kyoto::workloads::spec::{SpecApp, SpecWorkload};
use kyoto::EXAMPLE_SCALE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The provider's catalogue.
    let catalog = PermitCatalog::default();
    println!("Instance catalogue (permit proportional to memory):");
    for family in InstanceFamily::ALL {
        let instance = InstanceType::new(family, 4);
        println!(
            "  {:<7} {:5.0} GiB memory  ->  llc_cap {:>10}   {:.3} $/h",
            instance.name(),
            instance.memory_gib(),
            catalog.permit_for(instance).to_string(),
            catalog.hourly_price(instance)
        );
    }

    // 2. Two customers book instances. The paper-scale permits are converted
    //    to the scaled example machine by dividing by the scale factor.
    let hpc_instance = InstanceType::new(InstanceFamily::MemoryOptimized, 1);
    let batch_instance = InstanceType::new(InstanceFamily::ComputeOptimized, 1);
    let to_sim = |paper: f64| paper / EXAMPLE_SCALE as f64;
    let hpc_permit = to_sim(catalog.permit_for(hpc_instance).misses_per_ms());
    let batch_permit = to_sim(catalog.permit_for(batch_instance).misses_per_ms());

    // 3. Runtime enforcement on a Kyoto-enabled host.
    let machine = Machine::new(MachineConfig::scaled_paper_machine(EXAMPLE_SCALE));
    let mut host = ks4xen_hypervisor(
        machine,
        HypervisorConfig::default(),
        MonitoringStrategy::SimulatorAttribution,
    );
    host.engine_mut().enable_shadow_attribution()?;
    let hpc = host.add_vm_with(
        VmConfig::new("customer-a (r3, soplex)")
            .pinned_to(vec![CoreId(0)])
            .with_llc_cap(hpc_permit),
        Box::new(SpecWorkload::new(SpecApp::Soplex, EXAMPLE_SCALE, 1)),
    )?;
    let batch = host.add_vm_with(
        VmConfig::new("customer-b (c3, blockie)")
            .pinned_to(vec![CoreId(1)])
            .with_llc_cap(batch_permit),
        Box::new(SpecWorkload::new(SpecApp::Blockie, EXAMPLE_SCALE, 2)),
    )?;
    host.run_ms(600);

    println!();
    println!("Runtime enforcement after 600 ms:");
    for (vm, instance) in [(hpc, hpc_instance), (batch, batch_instance)] {
        let report = host.report(vm).expect("vm exists");
        println!(
            "  {:<26} permit {:>9.0} misses/ms  measured {:>9.0} misses/ms  punished {:>3} times  cpu {:>3.0}%",
            report.name,
            to_sim(catalog.permit_for(instance).misses_per_ms()),
            report.llc_misses_per_cpu_ms(host.engine().machine().config().freq_khz),
            report.punishments,
            report.cpu_share() * 100.0
        );
    }

    // 4. Billing.
    println!();
    println!("Monthly bills (720 h):");
    for (customer, instance) in [("customer-a", hpc_instance), ("customer-b", batch_instance)] {
        let bill = catalog.bill(instance, 720.0);
        println!(
            "  {customer}: {} = {:.2}$ compute + {:.2}$ pollution permit = {:.2}$ total",
            instance.name(),
            bill.compute_cost,
            bill.permit_cost,
            bill.total()
        );
    }
    Ok(())
}
