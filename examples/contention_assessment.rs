//! Reproduce the paper's problem-assessment campaign (Section 2.2, Fig. 1
//! and Fig. 2) from the library's experiment API.
//!
//! The example prints the degradation matrix of the three VM categories
//! under the three co-location modes, then the LLC-miss trace of the most
//! penalised VM type (`v2rep`) over its first time slices.
//!
//! Run with `cargo run --release --example contention_assessment`.

use kyoto::experiments::config::ExperimentConfig;
use kyoto::experiments::{fig1, fig2};

fn main() {
    // A middle ground between the test (`quick`) and figure (`standard`)
    // fidelities keeps the example under a minute.
    let config = ExperimentConfig {
        scale: 128,
        seed: 42,
        warmup_ticks: 6,
        measure_ticks: 15,
        parallel_engine: false,
    };

    println!("Running the Fig. 1 campaign (30 scenarios)...");
    let fig1 = fig1::run(&config);
    print!("{}", fig1.to_table());

    println!();
    println!("Running the Fig. 2 traces (4 scenarios x 6 time slices)...");
    let fig2 = fig2::run(&config);
    print!("{}", fig2.to_table());

    println!();
    println!(
        "Reading guide: C1 representatives should show near-zero degradation, C2/C3 \
         representatives should suffer most from C2/C3 disruptors, and parallel execution \
         should hurt far more than alternative execution."
    );
}
