//! Fleet-scale consolidation: the polluter-pays principle deciding VM
//! *placement* across many machines, not just scheduling within one.
//!
//! Builds a four-cell cluster, fills it with an alternating mix of
//! cache-sensitive and disruptive VMs (every cell starts with one of each),
//! and lets the pollution-aware planner separate them over a few epochs of
//! live migration. Prints the per-epoch migrations and the final placement.
//!
//! Run with: `cargo run --release --example fleet_consolidation`

use kyoto::cluster::cluster::{Cluster, ClusterConfig};
use kyoto::cluster::planner::{ConsolidationPolicy, PlannerConfig};
use kyoto::cluster::snapshot::CellId;
use kyoto::core::monitor::MonitoringStrategy;
use kyoto::hypervisor::VmConfig;
use kyoto::workloads::spec::{SpecApp, SpecWorkload};
use kyoto::EXAMPLE_SCALE;

fn main() {
    let cells = 4;
    let config = ClusterConfig::new(cells, EXAMPLE_SCALE)
        .with_epoch_ticks(6)
        .with_policy(ConsolidationPolicy::PollutionAware)
        .with_strategy(MonitoringStrategy::SimulatorAttribution)
        .with_planner(
            PlannerConfig::default()
                .with_max_moves(4)
                .with_polluter_threshold(300.0),
        );
    let mut cluster = Cluster::new(config);

    // Arrival order fills cells one by one: every cell gets one sensitive
    // and one disruptive VM — the worst case for the sensitive VMs.
    let mix = [
        SpecApp::Gcc,
        SpecApp::Lbm,
        SpecApp::Omnetpp,
        SpecApp::Mcf,
        SpecApp::Soplex,
        SpecApp::Blockie,
        SpecApp::Gcc,
        SpecApp::Lbm,
    ];
    for (i, app) in mix.iter().enumerate() {
        cluster
            .add_vm(
                CellId(i / 2),
                VmConfig::new(format!("vm{i}-{}", app.name())).with_llc_cap(300.0),
                Box::new(SpecWorkload::new(*app, EXAMPLE_SCALE, 0xf1ee7 + i as u64)),
            )
            .expect("seeding stays within cell capacity");
    }

    println!("fleet of {cells} cells, 8 VMs (one polluter next to one victim per cell)\n");
    for _ in 0..5 {
        let report = cluster.run_epoch().expect("example run is fault-free");
        println!(
            "epoch {}: {} migrations {}",
            report.epoch,
            report.migrations.len(),
            report
                .migrations
                .iter()
                .map(|m| format!("{} {}->{}", m.vm, m.from, m.to))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }

    println!(
        "\ntotal: {} migrations, {} warm lines dropped at sources\n",
        cluster.total_migrations(),
        cluster.total_flushed_lines()
    );
    println!("final placement and fleet-wide per-VM outcome:");
    for report in cluster.reports() {
        println!(
            "  {} on {}: ipc {:.3}  punishments {:>3}  migrations {}",
            report.name,
            report.cell,
            report.ipc(),
            report.punishments,
            report.migrations,
        );
    }
}
