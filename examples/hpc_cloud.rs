//! An HPC cloud consolidation scenario (the paper's motivating use case).
//!
//! A provider consolidates one latency-sensitive HPC tenant (soplex) with a
//! growing number of batch tenants (lbm) on a single four-core host — the
//! ~4 vCPUs-per-core ratio the paper cites. The example compares the HPC
//! tenant's performance predictability (coefficient of variation across
//! consolidation levels) under plain Xen and under KS4Xen with pollution
//! permits, reproducing the spirit of Fig. 5/Fig. 6.
//!
//! Run with `cargo run --release --example hpc_cloud`.

use kyoto::core::ks4::ks4xen_hypervisor;
use kyoto::core::monitor::MonitoringStrategy;
use kyoto::hypervisor::{xen_hypervisor, HypervisorConfig, VmConfig};
use kyoto::metrics::stats::Summary;
use kyoto::sim::topology::{CoreId, Machine, MachineConfig};
use kyoto::workloads::spec::{SpecApp, SpecWorkload};
use kyoto::EXAMPLE_SCALE;

const RUN_MS: u64 = 450;
const HPC_PERMIT: f64 = 3_000.0;
const BATCH_PERMIT: f64 = 150.0;

fn machine() -> Machine {
    Machine::new(MachineConfig::scaled_paper_machine(EXAMPLE_SCALE))
}

fn hpc_throughput_xen(batch_tenants: usize) -> f64 {
    let mut cloud = xen_hypervisor(machine(), HypervisorConfig::default());
    let hpc = cloud
        .add_vm_with(
            VmConfig::new("hpc-soplex").pinned_to(vec![CoreId(0)]),
            Box::new(SpecWorkload::new(SpecApp::Soplex, EXAMPLE_SCALE, 1)),
        )
        .expect("valid VM");
    for i in 0..batch_tenants {
        cloud
            .add_vm_with(
                VmConfig::new(format!("batch-{i}")).pinned_to(vec![CoreId(1 + i % 3)]),
                Box::new(SpecWorkload::new(
                    SpecApp::Lbm,
                    EXAMPLE_SCALE,
                    10 + i as u64,
                )),
            )
            .expect("valid VM");
    }
    cloud.run_ms(RUN_MS);
    cloud
        .report(hpc)
        .expect("hpc exists")
        .instructions_per_tick()
}

fn hpc_throughput_kyoto(batch_tenants: usize) -> f64 {
    let mut cloud = ks4xen_hypervisor(
        machine(),
        HypervisorConfig::default(),
        MonitoringStrategy::SimulatorAttribution,
    );
    cloud
        .engine_mut()
        .enable_shadow_attribution()
        .expect("valid LLC geometry");
    let hpc = cloud
        .add_vm_with(
            VmConfig::new("hpc-soplex")
                .pinned_to(vec![CoreId(0)])
                .with_llc_cap(HPC_PERMIT),
            Box::new(SpecWorkload::new(SpecApp::Soplex, EXAMPLE_SCALE, 1)),
        )
        .expect("valid VM");
    for i in 0..batch_tenants {
        cloud
            .add_vm_with(
                VmConfig::new(format!("batch-{i}"))
                    .pinned_to(vec![CoreId(1 + i % 3)])
                    .with_llc_cap(BATCH_PERMIT),
                Box::new(SpecWorkload::new(
                    SpecApp::Lbm,
                    EXAMPLE_SCALE,
                    10 + i as u64,
                )),
            )
            .expect("valid VM");
    }
    cloud.run_ms(RUN_MS);
    cloud
        .report(hpc)
        .expect("hpc exists")
        .instructions_per_tick()
}

fn main() {
    let consolidation_levels = [0usize, 1, 2, 3, 6, 9];
    println!("HPC tenant throughput (instructions/tick) per consolidation level");
    println!("  #batch   plain Xen      KS4Xen");

    let mut xen_normalised = Vec::new();
    let mut kyoto_normalised = Vec::new();
    let xen_baseline = hpc_throughput_xen(0);
    let kyoto_baseline = hpc_throughput_kyoto(0);
    for &n in &consolidation_levels {
        let xen = hpc_throughput_xen(n);
        let kyoto = hpc_throughput_kyoto(n);
        println!("  {n:6}   {xen:12.0} {kyoto:12.0}");
        xen_normalised.push(xen / xen_baseline);
        kyoto_normalised.push(kyoto / kyoto_baseline);
    }

    let xen_summary = Summary::of(&xen_normalised);
    let kyoto_summary = Summary::of(&kyoto_normalised);
    println!();
    println!(
        "predictability (coefficient of variation of normalised perf): Xen {:.3}, KS4Xen {:.3}",
        xen_summary.coefficient_of_variation(),
        kyoto_summary.coefficient_of_variation()
    );
    println!(
        "worst-case normalised perf:                                    Xen {:.2}, KS4Xen {:.2}",
        xen_summary.min, kyoto_summary.min
    );
}
