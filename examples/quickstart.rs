//! Quickstart: see LLC contention happen, then make the polluter pay.
//!
//! The example runs three configurations of the same two-VM cloud:
//!
//! 1. the sensitive VM (gcc) alone — its baseline performance;
//! 2. gcc co-located with an aggressive VM (lbm) under the plain Xen credit
//!    scheduler — performance collapses because of LLC contention;
//! 3. the same co-location under KS4Xen with pollution permits — lbm is
//!    punished whenever it exceeds its permit and gcc's performance returns
//!    close to its baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use kyoto::core::ks4::ks4xen_hypervisor;
use kyoto::core::monitor::MonitoringStrategy;
use kyoto::hypervisor::{xen_hypervisor, HypervisorConfig, VmConfig, VmReport};
use kyoto::sim::topology::{CoreId, Machine, MachineConfig};
use kyoto::workloads::spec::{SpecApp, SpecWorkload};
use kyoto::EXAMPLE_SCALE;

const RUN_MS: u64 = 600;

fn gcc_vm(llc_cap: Option<f64>) -> (VmConfig, Box<SpecWorkload>) {
    let mut config = VmConfig::new("gcc").pinned_to(vec![CoreId(0)]);
    if let Some(cap) = llc_cap {
        config = config.with_llc_cap(cap);
    }
    (
        config,
        Box::new(SpecWorkload::new(SpecApp::Gcc, EXAMPLE_SCALE, 1)),
    )
}

fn lbm_vm(llc_cap: Option<f64>) -> (VmConfig, Box<SpecWorkload>) {
    let mut config = VmConfig::new("lbm").pinned_to(vec![CoreId(1)]);
    if let Some(cap) = llc_cap {
        config = config.with_llc_cap(cap);
    }
    (
        config,
        Box::new(SpecWorkload::new(SpecApp::Lbm, EXAMPLE_SCALE, 2)),
    )
}

fn machine() -> Machine {
    Machine::new(MachineConfig::scaled_paper_machine(EXAMPLE_SCALE))
}

fn throughput(report: &VmReport) -> f64 {
    report.instructions_per_tick()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Baseline: gcc alone under plain Xen.
    let mut alone = xen_hypervisor(machine(), HypervisorConfig::default());
    let (config, workload) = gcc_vm(None);
    let gcc = alone.add_vm_with(config, workload)?;
    alone.run_ms(RUN_MS);
    let baseline = throughput(&alone.report(gcc).expect("gcc exists"));
    println!("gcc alone (XCS):               {baseline:12.0} instructions/tick");

    // 2. Contention: gcc + lbm under plain Xen.
    let mut contended = xen_hypervisor(machine(), HypervisorConfig::default());
    let (config, workload) = gcc_vm(None);
    let gcc = contended.add_vm_with(config, workload)?;
    let (config, workload) = lbm_vm(None);
    contended.add_vm_with(config, workload)?;
    contended.run_ms(RUN_MS);
    let with_polluter = throughput(&contended.report(gcc).expect("gcc exists"));
    println!(
        "gcc + lbm (XCS):               {with_polluter:12.0} instructions/tick  ({:.0}% of baseline)",
        with_polluter / baseline * 100.0
    );

    // 3. Kyoto: both VMs book pollution permits; lbm exceeds its permit and
    //    is punished, protecting gcc. Permits are expressed in LLC misses
    //    per millisecond of CPU time on the scaled machine (this value plays
    //    the role of the paper's 250k permit on its physical testbed).
    let permit = 150.0;
    let mut kyoto = ks4xen_hypervisor(
        machine(),
        HypervisorConfig::default(),
        MonitoringStrategy::SimulatorAttribution,
    );
    kyoto.engine_mut().enable_shadow_attribution()?;
    let (config, workload) = gcc_vm(Some(permit));
    let gcc = kyoto.add_vm_with(config, workload)?;
    let (config, workload) = lbm_vm(Some(permit));
    let lbm = kyoto.add_vm_with(config, workload)?;
    kyoto.run_ms(RUN_MS);
    let protected = throughput(&kyoto.report(gcc).expect("gcc exists"));
    let lbm_report = kyoto.report(lbm).expect("lbm exists");
    println!(
        "gcc + lbm (KS4Xen, permits):   {protected:12.0} instructions/tick  ({:.0}% of baseline)",
        protected / baseline * 100.0
    );
    println!(
        "lbm punished {} times; its CPU share dropped to {:.0}%",
        lbm_report.punishments,
        lbm_report.cpu_share() * 100.0
    );
    Ok(())
}
