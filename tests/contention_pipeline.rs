//! End-to-end checks of the problem-assessment pipeline (Section 2.2 of the
//! paper): LLC contention must emerge from the simulated substrate with the
//! shape reported by Fig. 1 and Fig. 2.

use kyoto::experiments::config::ExperimentConfig;
use kyoto::experiments::harness::ExecutionMode;
use kyoto::experiments::{fig1, fig2};
use kyoto::workloads::category::Category;

fn test_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 256,
        seed: 123,
        warmup_ticks: 3,
        measure_ticks: 8,
        parallel_engine: false,
    }
}

#[test]
fn fig1_c1_representatives_are_insensitive() {
    let result = fig1::run(&test_config());
    for mode in ExecutionMode::CONTENDED {
        for dis in Category::ALL {
            let row = result.row(Category::C1, dis, mode).expect("row exists");
            assert!(
                row.degradation_percent < 10.0,
                "a C1 representative should be (almost) immune to contention, got {:.1}% vs {dis} in {}",
                row.degradation_percent,
                mode.label()
            );
        }
    }
}

#[test]
fn fig1_sensitive_vms_suffer_from_llc_thrashing_disruptors() {
    let result = fig1::run(&test_config());
    // C2 representative vs C2/C3 disruptors in parallel: the paper's worst
    // cases (up to ~70 %). We only require a clearly visible degradation.
    let parallel_c2 = result
        .row(Category::C2, Category::C2, ExecutionMode::Parallel)
        .unwrap()
        .degradation_percent;
    let parallel_c3 = result
        .row(Category::C2, Category::C3, ExecutionMode::Parallel)
        .unwrap()
        .degradation_percent;
    assert!(
        parallel_c2 > 15.0 || parallel_c3 > 15.0,
        "parallel LLC thrashing must visibly degrade a C2 representative (got {parallel_c2:.1}% / {parallel_c3:.1}%)"
    );
    // And the C1 disruptor must hurt far less than the C2/C3 ones.
    let parallel_c1 = result
        .row(Category::C2, Category::C1, ExecutionMode::Parallel)
        .unwrap()
        .degradation_percent;
    assert!(parallel_c1 < parallel_c2.max(parallel_c3));
}

#[test]
fn fig1_parallel_contention_is_worse_than_alternative() {
    let result = fig1::run(&test_config());
    let mut parallel_total = 0.0;
    let mut alternative_total = 0.0;
    for rep in [Category::C2, Category::C3] {
        for dis in [Category::C2, Category::C3] {
            parallel_total += result
                .row(rep, dis, ExecutionMode::Parallel)
                .unwrap()
                .degradation_percent;
            alternative_total += result
                .row(rep, dis, ExecutionMode::Alternative)
                .unwrap()
                .degradation_percent;
        }
    }
    assert!(
        parallel_total > alternative_total,
        "parallel execution should be the more devastating mode ({parallel_total:.1} vs {alternative_total:.1} cumulative %)"
    );
}

#[test]
fn fig2_traces_reproduce_the_papers_shapes() {
    let config = test_config();
    let result = fig2::run_slices(&config, 4);
    let alone = result.series_for(ExecutionMode::Alone).unwrap();
    let alternative = result.series_for(ExecutionMode::Alternative).unwrap();
    let parallel = result.series_for(ExecutionMode::Parallel).unwrap();

    // Alone: after the data-loading slice, misses vanish.
    let alone_tail: f64 = alone.values().iter().skip(3).sum();
    // Parallel: misses keep flowing for the whole trace.
    let parallel_tail: f64 = parallel.values().iter().skip(3).sum();
    assert!(
        parallel_tail > alone_tail * 2.0,
        "parallel trace should keep missing after warm-up (alone tail {alone_tail}, parallel tail {parallel_tail})"
    );

    // Alternative: the VM only runs on some ticks (zig-zag), so its trace
    // contains both zero ticks (descheduled) and miss bursts (reloads).
    let alt_values = alternative.values();
    assert!(alt_values.contains(&0.0));
    assert!(alt_values.iter().skip(3).any(|&v| v > 0.0));
}
