//! Cross-crate scenarios exercising the whole stack through the facade
//! crate: VM lifecycle, determinism, permit policy wiring and the three
//! Kyoto scheduler variants.

use kyoto::core::ks4::{ks4linux_hypervisor, ks4xen_hypervisor};
use kyoto::core::monitor::MonitoringStrategy;
use kyoto::core::policy::{InstanceFamily, InstanceType, PermitCatalog};
use kyoto::hypervisor::{HypervisorConfig, VmConfig};
use kyoto::sim::topology::{CoreId, Machine, MachineConfig};
use kyoto::workloads::spec::{SpecApp, SpecWorkload};

const SCALE: u64 = 256;

fn machine() -> Machine {
    Machine::new(MachineConfig::scaled_paper_machine(SCALE))
}

#[test]
fn same_seed_same_results_different_seed_different_results() {
    let run = |seed: u64| {
        let mut hv = kyoto::hypervisor::xen_hypervisor(machine(), HypervisorConfig::default());
        let vm = hv
            .add_vm_with(
                VmConfig::new("gcc").pinned_to(vec![CoreId(0)]),
                Box::new(SpecWorkload::new(SpecApp::Gcc, SCALE, seed)),
            )
            .unwrap();
        hv.add_vm_with(
            VmConfig::new("lbm").pinned_to(vec![CoreId(1)]),
            Box::new(SpecWorkload::new(SpecApp::Lbm, SCALE, seed + 1)),
        )
        .unwrap();
        hv.run_ms(200);
        hv.report(vm).unwrap().pmcs
    };
    assert_eq!(
        run(7),
        run(7),
        "identical seeds must reproduce identical counters"
    );
    assert_ne!(run(7), run(8), "different seeds should diverge");
}

#[test]
fn vm_lifecycle_add_remove_add_again() {
    let mut hv = ks4xen_hypervisor(
        machine(),
        HypervisorConfig::default(),
        MonitoringStrategy::DirectPmc,
    );
    let a = hv
        .add_vm_with(
            VmConfig::new("a").with_llc_cap(100.0),
            Box::new(SpecWorkload::new(SpecApp::Blockie, SCALE, 1)),
        )
        .unwrap();
    hv.run_ms(100);
    assert!(
        hv.report(a).unwrap().punishments > 0,
        "blockie should exceed a 100-miss/ms permit"
    );
    hv.remove_vm(a).unwrap();
    assert!(hv.report(a).is_none());
    // The machine keeps working after the removal.
    let b = hv
        .add_vm_with(
            VmConfig::new("b"),
            Box::new(SpecWorkload::new(SpecApp::Povray, SCALE, 2)),
        )
        .unwrap();
    hv.run_ms(100);
    let report = hv.report(b).unwrap();
    assert!(report.pmcs.instructions > 0);
    assert_eq!(
        report.punishments, 0,
        "povray books no permit and is never punished"
    );
}

#[test]
fn permit_catalogue_feeds_the_scheduler_end_to_end() {
    let catalog = PermitCatalog::default();
    let r3 = InstanceType::new(InstanceFamily::MemoryOptimized, 1);
    let c3 = InstanceType::new(InstanceFamily::ComputeOptimized, 1);
    // Paper-scale permits converted to the scaled machine.
    let to_sim = |paper: f64| paper / SCALE as f64;
    let mut hv = ks4xen_hypervisor(
        machine(),
        HypervisorConfig::default(),
        MonitoringStrategy::SimulatorAttribution,
    );
    hv.engine_mut().enable_shadow_attribution().unwrap();
    let hpc = hv
        .add_vm_with(
            VmConfig::new("r3-soplex")
                .pinned_to(vec![CoreId(0)])
                .with_llc_cap(to_sim(catalog.permit_for(r3).misses_per_ms())),
            Box::new(SpecWorkload::new(SpecApp::Soplex, SCALE, 1)),
        )
        .unwrap();
    let batch = hv
        .add_vm_with(
            VmConfig::new("c3-blockie")
                .pinned_to(vec![CoreId(1)])
                .with_llc_cap(to_sim(catalog.permit_for(c3).misses_per_ms())),
            Box::new(SpecWorkload::new(SpecApp::Blockie, SCALE, 2)),
        )
        .unwrap();
    hv.run_ms(300);
    let hpc_report = hv.report(hpc).unwrap();
    let batch_report = hv.report(batch).unwrap();
    assert!(
        batch_report.punishments > hpc_report.punishments,
        "the small compute-optimised permit should be exceeded by blockie ({} punishments) more than soplex exceeds the memory-optimised one ({})",
        batch_report.punishments,
        hpc_report.punishments
    );
    // Billing stays consistent with the catalogue.
    assert!(catalog.bill(r3, 1.0).total() > catalog.bill(c3, 1.0).total());
}

#[test]
fn ks4linux_enforces_permits_like_ks4xen() {
    let mut hv = ks4linux_hypervisor(
        machine(),
        HypervisorConfig::default(),
        MonitoringStrategy::DirectPmc,
    );
    let polluter = hv
        .add_vm_with(
            VmConfig::new("lbm")
                .pinned_to(vec![CoreId(0)])
                .with_llc_cap(50.0),
            Box::new(SpecWorkload::new(SpecApp::Lbm, SCALE, 3)),
        )
        .unwrap();
    let neighbour = hv
        .add_vm_with(
            VmConfig::new("povray").pinned_to(vec![CoreId(1)]),
            Box::new(SpecWorkload::new(SpecApp::Povray, SCALE, 4)),
        )
        .unwrap();
    hv.run_ms(300);
    let polluter_report = hv.report(polluter).unwrap();
    let neighbour_report = hv.report(neighbour).unwrap();
    assert!(
        polluter_report.punishments > 0,
        "KS4Linux must punish the polluter"
    );
    assert!(
        polluter_report.cpu_share() < 0.9,
        "punishment must cost CPU time"
    );
    assert!(
        (neighbour_report.cpu_share() - 1.0).abs() < 1e-9,
        "the clean VM keeps its core"
    );
}

#[test]
fn history_supports_trace_analysis_across_crates() {
    let mut hv =
        kyoto::hypervisor::xen_hypervisor(machine(), HypervisorConfig::default().with_history());
    let vm = hv
        .add_vm_with(
            VmConfig::new("gcc").pinned_to(vec![CoreId(0)]),
            Box::new(SpecWorkload::new(SpecApp::Gcc, SCALE, 1)),
        )
        .unwrap();
    hv.run_ticks(12);
    let history = hv.history_of(kyoto::hypervisor::VcpuId::new(vm, 0));
    assert_eq!(history.len(), 12);
    let mut series = kyoto::metrics::series::TimeSeries::new("gcc llc misses");
    for sample in &history {
        series.push(sample.tick as f64, sample.pmc_delta.llc_misses as f64);
    }
    // The cold-start tick must carry the bulk of the misses.
    assert!(series.values()[0] >= series.values()[series.len() - 1]);
}
