//! The socket-parallel engine must not change a single byte of any figure.
//!
//! The `figures` binary guarantees byte-identical reports for any `--jobs`
//! value by buffering per-scenario output; this test pins the deeper
//! property that makes `--parallel-engine` safe too: the rendered figure
//! *content* is byte-identical whether scenario hypervisors run the serial
//! or the socket-parallel engine, because `SimEngine::run_slots_parallel`
//! preserves the per-socket op order exactly.

use kyoto::experiments::cloudscale::{self, CloudscaleSweep};
use kyoto::experiments::config::ExperimentConfig;
use kyoto::experiments::fleet::{self, FleetSweep};
use kyoto::experiments::{fig1, fig9};

fn test_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 256,
        seed: 42,
        warmup_ticks: 2,
        measure_ticks: 5,
        parallel_engine: false,
    }
}

/// Fig. 9 runs the two-socket machine — the scenario where the parallel
/// engine actually splits execution across threads.
#[test]
fn fig9_output_is_byte_identical_with_the_parallel_engine() {
    let serial = fig9::run(&test_config()).to_table();
    let parallel = fig9::run(&test_config().with_parallel_engine(true)).to_table();
    assert_eq!(serial, parallel);
}

/// Fig. 1 runs the single-socket machine — the parallel path must fall back
/// to the serial engine without disturbing anything.
#[test]
fn fig1_output_is_byte_identical_with_the_parallel_engine() {
    let serial = fig1::run(&test_config()).to_table();
    let parallel = fig1::run(&test_config().with_parallel_engine(true)).to_table();
    assert_eq!(serial, parallel);
}

/// The cloudscale scenario runs machines of up to 4 sockets (8 at standard
/// size) — the first scenario where the parallel engine scales past two
/// threads. Its rendered table must still be byte-identical.
#[test]
fn cloudscale_output_is_byte_identical_with_the_parallel_engine() {
    let sweep = CloudscaleSweep::small();
    let serial = cloudscale::run_with_sweep(&test_config(), &sweep).to_table();
    let parallel =
        cloudscale::run_with_sweep(&test_config().with_parallel_engine(true), &sweep).to_table();
    assert_eq!(serial, parallel);
}

/// The cloudscale sweep's cells may fan out over scoped worker threads
/// (`figures --jobs`); the assembled table must not change by a byte.
#[test]
fn cloudscale_output_is_byte_identical_across_sweep_jobs() {
    let sweep = CloudscaleSweep::small();
    let serial = cloudscale::run_with_sweep_jobs(&test_config(), &sweep, 1).to_table();
    let threaded = cloudscale::run_with_sweep_jobs(&test_config(), &sweep, 8).to_table();
    assert_eq!(serial, threaded);
}

/// The fleet scenario stacks two parallelism levels — cell-parallel cluster
/// epochs plus the engine switch inside each cell — and must still render
/// byte-identically (`--parallel-engine` flips both). The small sweep
/// carries the churn half, so arrival/departure/drain/join dynamics are
/// covered too.
#[test]
fn fleet_output_is_byte_identical_with_parallel_cells() {
    let sweep = FleetSweep::small();
    let serial = fleet::run_with_sweep(&test_config(), &sweep).to_table();
    let parallel =
        fleet::run_with_sweep(&test_config().with_parallel_engine(true), &sweep).to_table();
    assert_eq!(serial, parallel);
    assert!(
        serial.contains("Fleet churn"),
        "churn rides in the fleet table"
    );
}

/// The fleet sweep's cells (static consolidation and churn points alike)
/// may fan out over scoped worker threads (`figures --jobs`); the assembled
/// table must not change by a byte.
#[test]
fn fleet_output_is_byte_identical_across_sweep_jobs() {
    let sweep = FleetSweep::small();
    let serial = fleet::run_with_sweep_jobs(&test_config(), &sweep, 1).to_table();
    let threaded = fleet::run_with_sweep_jobs(&test_config(), &sweep, 8).to_table();
    assert_eq!(serial, threaded);
}

/// The standalone churn rendering (the determinism gate's `churn` target)
/// is byte-identical across the engine switch and worker-thread counts.
#[test]
fn churn_output_is_byte_identical_with_parallel_cells_and_jobs() {
    let sweep = FleetSweep::small();
    let serial = fleet::run_churn_with_jobs(&test_config(), &sweep, 1)
        .expect("small sweep has churn")
        .to_table();
    let parallel = fleet::run_churn_with_jobs(&test_config().with_parallel_engine(true), &sweep, 1)
        .expect("small sweep has churn")
        .to_table();
    let threaded = fleet::run_churn_with_jobs(&test_config(), &sweep, 8)
        .expect("small sweep has churn")
        .to_table();
    assert_eq!(serial, parallel);
    assert_eq!(serial, threaded);
}
