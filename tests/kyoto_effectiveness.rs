//! End-to-end checks of the Kyoto mechanism itself: the shapes of Fig. 3,
//! Fig. 5, Fig. 6 and Fig. 8.

use kyoto::experiments::config::ExperimentConfig;
use kyoto::experiments::{fig3, fig5, fig6, fig8};
use kyoto::workloads::spec::SpecApp;

fn test_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 256,
        seed: 321,
        warmup_ticks: 3,
        measure_ticks: 9,
        parallel_engine: false,
    }
}

#[test]
fn fig3_the_processor_is_a_good_lever() {
    let result = fig3::run_with_caps(&test_config(), &[20, 60, 100]);
    // For each sensitive VM, degradation should not decrease as the
    // disruptor gets more CPU, and the full-speed disruptor must hurt more
    // than the heavily capped one.
    for app in SpecApp::SENSITIVE_VMS {
        let series = result.series_of(app);
        assert_eq!(series.len(), 3, "{app}");
        let low = series[0].1;
        let high = series[2].1;
        assert!(
            high >= low,
            "{app}: degradation with a 100% disruptor ({high:.1}%) must be at least that with 20% ({low:.1}%)"
        );
    }
    let gcc = result.series_of(SpecApp::Gcc);
    assert!(gcc[2].1 > gcc[0].1, "gcc must show a clear upward trend");
}

#[test]
fn fig5_ks4xen_protects_the_sensitive_vm_and_punishes_disruptors() {
    let result = fig5::run_with_trace_ticks(&test_config(), 24);
    for (dis, perf) in &result.normalized_perf {
        assert!(
            *perf > 0.6,
            "vsen1 normalised performance against {dis} should stay high, got {perf:.2}"
        );
    }
    for (dis, sen_punished, dis_punished) in &result.punishments {
        assert!(
            dis_punished >= sen_punished,
            "the disruptor {dis} must collect at least as many punishments ({dis_punished}) as vsen1 ({sen_punished})"
        );
    }
    // The disruptor must be punished at least once across the three scenarios.
    assert!(result.punishments.iter().any(|(_, _, d)| *d > 0));
    // KS4Xen cuts the polluter's CPU occupancy compared to XCS.
    assert!(result.cpu_trace_ks4xen.mean() < result.cpu_trace_xcs.mean());
    // The quota trace must dip below zero whenever punishment kicks in.
    assert!(result.quota_trace_ks4xen.values().iter().any(|&q| q < 0.0));
}

#[test]
fn fig6_ks4xen_scales_with_the_number_of_disruptors() {
    let result = fig6::run_with_counts(&test_config(), &[1, 4, 8]);
    assert_eq!(result.normalized_perf.len(), 3);
    for (count, perf) in &result.normalized_perf {
        assert!(
            *perf > 0.45,
            "with {count} punished disruptor vCPUs vsen1 should keep most of its performance, got {perf:.2}"
        );
    }
}

#[test]
fn fig8_pisces_alone_is_not_enough_and_ks4pisces_fixes_it() {
    let result = fig8::run(&test_config());
    assert!(
        result.pisces_gap_percent() > 5.0,
        "plain Pisces must exhibit an LLC-contention gap, got {:.1}%",
        result.pisces_gap_percent()
    );
    assert!(
        result.ks4pisces_gap_percent() < result.pisces_gap_percent() * 0.8,
        "KS4Pisces ({:.1}%) must substantially shrink the Pisces gap ({:.1}%)",
        result.ks4pisces_gap_percent(),
        result.pisces_gap_percent()
    );
}
