//! End-to-end checks of the pollution-monitoring results: Fig. 4 (indicator
//! comparison), Fig. 9 (migration overhead), Fig. 10 (skipping isolation),
//! Fig. 11 (simulator attribution) and Fig. 12 (overhead).

use kyoto::experiments::config::ExperimentConfig;
use kyoto::experiments::{fig10, fig11, fig12, fig4, fig9};
use kyoto::workloads::spec::SpecApp;

fn test_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 256,
        seed: 777,
        warmup_ticks: 3,
        measure_ticks: 8,
        parallel_engine: false,
    }
}

#[test]
fn fig4_equation_1_orders_aggressiveness_at_least_as_well_as_llcm() {
    // A six-application subset keeps the pairwise co-run matrix small while
    // still containing polluters (lbm, blockie, mcf) and quiet apps.
    let apps = [
        SpecApp::Lbm,
        SpecApp::Blockie,
        SpecApp::Mcf,
        SpecApp::Gcc,
        SpecApp::Astar,
        SpecApp::Bzip,
    ];
    let result = fig4::run_with_apps(&test_config(), &apps);
    assert!(
        result.equation1_wins(),
        "Equation 1 (tau {:.3}) should rank no worse than LLCM (tau {:.3})",
        result.tau_equation1,
        result.tau_llcm
    );
    // The heavy polluters must occupy the top of the measured order.
    let top2: Vec<SpecApp> = result
        .aggressiveness_order
        .iter()
        .take(2)
        .copied()
        .collect();
    assert!(
        top2.contains(&SpecApp::Lbm) || top2.contains(&SpecApp::Blockie),
        "lbm/blockie should top the aggressiveness order, got {top2:?}"
    );
    // And the quiet apps must be at the bottom half.
    let bzip_rank = result
        .aggressiveness_order
        .iter()
        .position(|&a| a == SpecApp::Bzip)
        .unwrap();
    assert!(
        bzip_rank >= 2,
        "bzip should not be among the most aggressive apps"
    );
}

#[test]
fn fig9_migration_hurts_memory_bound_apps_most() {
    let apps = [SpecApp::Lbm, SpecApp::Milc, SpecApp::Bzip, SpecApp::Astar];
    let result = fig9::run_with_apps(&test_config(), &apps);
    let memory_bound = result.degradation_of(SpecApp::Lbm).unwrap()
        + result.degradation_of(SpecApp::Milc).unwrap();
    let cache_friendly = result.degradation_of(SpecApp::Bzip).unwrap()
        + result.degradation_of(SpecApp::Astar).unwrap();
    assert!(
        memory_bound > cache_friendly,
        "memory-bound apps ({memory_bound:.1}%) must pay more for migrations than cache-friendly ones ({cache_friendly:.1}%)"
    );
    assert!(
        result.degradation_of(SpecApp::Lbm).unwrap() > 0.0,
        "lbm must show a positive migration overhead"
    );
}

#[test]
fn fig10_low_miss_situations_do_not_need_isolation() {
    let result = fig10::run(&test_config());
    // hmmer is a low polluter: even its non-isolated measurement stays tiny
    // compared to a real polluter.
    assert!(result.hmmer.isolated >= 0.0);
    assert!(
        result.bzip.relative_error_percent() < 60.0,
        "bzip among quiet neighbours should measure close to its solo value (error {:.1}%)",
        result.bzip.relative_error_percent()
    );
}

#[test]
fn fig11_simulator_attribution_preserves_the_polluter_ordering() {
    let apps = [SpecApp::Lbm, SpecApp::Gcc, SpecApp::Hmmer];
    let result = fig11::run_with_apps(&test_config(), &apps);
    let value = |app: SpecApp, dedicated: bool| {
        let row = result.row_of(app).unwrap();
        if dedicated {
            row.with_dedication
        } else {
            row.without_dedication
        }
    };
    // Both measurement methods must agree on who the polluter is.
    assert!(value(SpecApp::Lbm, true) > value(SpecApp::Hmmer, true));
    assert!(value(SpecApp::Lbm, false) > value(SpecApp::Hmmer, false));
}

#[test]
fn fig12_ks4xen_overhead_is_near_zero() {
    let result = fig12::run_with_slices(&test_config(), &[10, 20, 30]);
    assert_eq!(result.points.len(), 3);
    assert!(
        result.max_overhead_percent() < 5.0,
        "the Kyoto monitoring must not slow down CPU-bound VMs (max overhead {:.2}%)",
        result.max_overhead_percent()
    );
}
