#!/usr/bin/env bash
# Bench-regression smoke gate.
#
# Parses a BENCH_substrate.json (freshly produced by the substrate_baseline
# binary in CI, or the committed one locally) and fails when:
#
#   1. the optimized engine's speedup over the frozen seed hot path drops
#      below a tolerant floor (committed baseline ~1.85-2x; 1.5x leaves room
#      for runner noise while still catching a real regression), or
#   2. the parallel-execution speedups — cluster epochs over serial epochs
#      (`cluster_epoch_parallel_vs_serial`), the same control loop under
#      churn (`fleet_churn_parallel_vs_serial`) and the socket-parallel
#      engine on cloud machines (`parallel_vs_serial_speedup_cloud`) — drop
#      below their floor, *provided the host can parallelise at all*, or
#
#   3. disabled cycle-domain tracing costs measurable throughput
#      (`trace_overhead.off_vs_untraced`): the trace plane branches out on
#      an enum when off, so the trace-off batched rate must stay at the
#      untraced batched rate (~1.0 up to wall-clock noise), or
#
#   4. the engine's blocked-slot skip stops paying off
#      (`blocked_skip_benefit.half_blocked_vs_all_runnable`): with half of
#      an eight-slot set parked, the nominal-cycle rate must beat the
#      all-runnable rate by a clear margin (the parked half is never
#      walked). The committed baseline is ~2x; the 1.3x floor leaves room
#      for runner noise while catching the skip degrading into a
#      walk-and-discard, or
#
#   5. installing a zero-rate fault plan costs measurable throughput
#      (`fault_machinery_overhead.zero_rate_plan_vs_no_plan`): a plan that
#      schedules nothing must be free, so the epoch-rate ratio should sit
#      near 1.0. The floor is tolerant (wall-clock noise on a short run)
#      but catches the fault boundary growing real per-epoch cost.
#
# When the producing host had a single hardware thread
# (`parallel_bench_threads == 1`), parallel speedups are structurally ~1.0x
# and assertion 2 would always fail — or, worse, a lenient floor would always
# pass and mask a real regression on capable hosts. So on single-thread
# hosts the parallel assertions are SKIPPED with a loud warning rather than
# silently passed.
#
# Usage:
#   ci/check_bench.sh [path/to/BENCH_substrate.json]
#   BENCH_MIN_SPEEDUP=1.7 ci/check_bench.sh       # override the serial floor
#   PARALLEL_MIN_SPEEDUP=1.3 ci/check_bench.sh    # override the parallel floor
#   KYOTO_MIN_FAULT_OVERHEAD_RATIO=0.9 ci/check_bench.sh  # override the fault floor
#   KYOTO_MIN_TRACE_OFF_RATIO=0.9 ci/check_bench.sh       # override the trace floor
#   KYOTO_MIN_BLOCKED_SKIP=1.5 ci/check_bench.sh          # override the blocked-skip floor
set -euo pipefail

file="${1:-BENCH_substrate.json}"
floor="${BENCH_MIN_SPEEDUP:-1.5}"
parallel_floor="${PARALLEL_MIN_SPEEDUP:-1.1}"
fault_floor="${KYOTO_MIN_FAULT_OVERHEAD_RATIO:-0.8}"
trace_floor="${KYOTO_MIN_TRACE_OFF_RATIO:-0.95}"
blocked_floor="${KYOTO_MIN_BLOCKED_SKIP:-1.3}"

if [ ! -f "$file" ]; then
    echo "error: $file not found (run: cargo run --release -p kyoto-bench --bin substrate_baseline)" >&2
    exit 2
fi

echo "Checking optimized-vs-seed run_slots speedups in $file (floor: ${floor}x)"
awk -v floor="$floor" '
    /"optimized_vs_seed_speedup"/ { in_block = 1; next }
    in_block && /}/ { in_block = 0 }
    in_block && /_slots/ {
        line = $0
        gsub(/[",]/, "", line)
        split(line, kv, ":")
        gsub(/^[ \t]+|[ \t]+$/, "", kv[1])
        value = kv[2] + 0
        seen += 1
        printf "  %s: %.2fx\n", kv[1], value
        if (value < floor) {
            printf "  ^^^ below the %.2fx floor\n", floor
            bad = 1
        }
    }
    END {
        if (seen == 0) {
            print "error: no optimized_vs_seed_speedup entries found" > "/dev/stderr"
            exit 2
        }
        exit bad
    }
' "$file"

threads="$(awk '/"parallel_bench_threads"/ { line = $0; gsub(/[^0-9]/, "", line); print line; exit }' "$file")"
if [ -z "$threads" ]; then
    echo "error: no parallel_bench_threads entry found in $file" >&2
    exit 2
fi

if [ "$threads" -le 1 ]; then
    echo "" >&2
    echo "##############################################################################" >&2
    echo "# WARNING: parallel-speedup assertions SKIPPED                               #" >&2
    echo "# The bench host had a single hardware thread (parallel_bench_threads == 1), #" >&2
    echo "# so parallel speedups are structurally ~1.0x and assert nothing. Re-run     #" >&2
    echo "# substrate_baseline on a multi-core host to gate parallel performance.      #" >&2
    echo "##############################################################################" >&2
    echo "" >&2
else
    echo "Checking parallel speedups in $file (threads: ${threads}, floor: ${parallel_floor}x)"
    awk -v floor="$parallel_floor" '
        /"parallel_vs_serial_speedup_cloud"/ || /"cluster_epoch_parallel_vs_serial"/ || /"fleet_churn_parallel_vs_serial"/ { in_block = 1; next }
        in_block && /}/ { in_block = 0 }
        in_block && (/_sockets/ || /_cells/) {
            line = $0
            gsub(/[",]/, "", line)
            split(line, kv, ":")
            gsub(/^[ \t]+|[ \t]+$/, "", kv[1])
            value = kv[2] + 0
            seen += 1
            printf "  %s: %.2fx\n", kv[1], value
            if (value < floor) {
                printf "  ^^^ below the %.2fx floor\n", floor
                bad = 1
            }
        }
        END {
            if (seen == 0) {
                print "error: no parallel speedup entries found" > "/dev/stderr"
                exit 2
            }
            exit bad
        }
    ' "$file"
fi

echo "Checking trace-off overhead in $file (floor: ${trace_floor}x)"
awk -v floor="$trace_floor" '
    /"trace_overhead"/ { in_block = 1; next }
    in_block && /}/ { in_block = 0 }
    in_block && /off_vs_untraced/ {
        line = $0
        gsub(/[",]/, "", line)
        split(line, kv, ":")
        value = kv[2] + 0
        seen += 1
        printf "  off_vs_untraced: %.2fx\n", value
        if (value < floor) {
            printf "  ^^^ below the %.2fx floor: disabled tracing must be ~free\n", floor
            bad = 1
        }
    }
    END {
        if (seen == 0) {
            print "error: no trace_overhead entry found" > "/dev/stderr"
            exit 2
        }
        exit bad
    }
' "$file"

echo "Checking blocked-slot skip benefit in $file (floor: ${blocked_floor}x)"
awk -v floor="$blocked_floor" '
    /"blocked_skip_benefit"/ { in_block = 1; next }
    in_block && /}/ { in_block = 0 }
    in_block && /half_blocked_vs_all_runnable/ {
        line = $0
        gsub(/[",]/, "", line)
        split(line, kv, ":")
        value = kv[2] + 0
        seen += 1
        printf "  half_blocked_vs_all_runnable: %.2fx\n", value
        if (value < floor) {
            printf "  ^^^ below the %.2fx floor: blocked slots must be skipped, not walked\n", floor
            bad = 1
        }
    }
    END {
        if (seen == 0) {
            print "error: no blocked_skip_benefit entry found" > "/dev/stderr"
            exit 2
        }
        exit bad
    }
' "$file"

echo "Checking fault-machinery overhead in $file (floor: ${fault_floor}x)"
awk -v floor="$fault_floor" '
    /"fault_machinery_overhead"/ { in_block = 1; next }
    in_block && /}/ { in_block = 0 }
    in_block && /zero_rate_plan_vs_no_plan/ {
        line = $0
        gsub(/[",]/, "", line)
        split(line, kv, ":")
        value = kv[2] + 0
        seen += 1
        printf "  zero_rate_plan_vs_no_plan: %.2fx\n", value
        if (value < floor) {
            printf "  ^^^ below the %.2fx floor: a zero-rate fault plan must be ~free\n", floor
            bad = 1
        }
    }
    END {
        if (seen == 0) {
            print "error: no fault_machinery_overhead entry found" > "/dev/stderr"
            exit 2
        }
        exit bad
    }
' "$file"
echo "bench gate OK"
