#!/usr/bin/env bash
# Bench-regression smoke gate.
#
# Parses a BENCH_substrate.json (freshly produced by the substrate_baseline
# binary in CI, or the committed one locally) and fails when the optimized
# engine's speedup over the frozen seed hot path drops below a tolerant
# floor. The committed baseline sits at ~1.85-2x, so 1.5x leaves room for
# runner noise while still catching a real regression of the hot path.
#
# Usage:
#   ci/check_bench.sh [path/to/BENCH_substrate.json]
#   BENCH_MIN_SPEEDUP=1.7 ci/check_bench.sh   # override the floor
set -euo pipefail

file="${1:-BENCH_substrate.json}"
floor="${BENCH_MIN_SPEEDUP:-1.5}"

if [ ! -f "$file" ]; then
    echo "error: $file not found (run: cargo run --release -p kyoto-bench --bin substrate_baseline)" >&2
    exit 2
fi

echo "Checking optimized-vs-seed run_slots speedups in $file (floor: ${floor}x)"
awk -v floor="$floor" '
    /"optimized_vs_seed_speedup"/ { in_block = 1; next }
    in_block && /}/ { in_block = 0 }
    in_block && /_slots/ {
        line = $0
        gsub(/[",]/, "", line)
        split(line, kv, ":")
        gsub(/^[ \t]+|[ \t]+$/, "", kv[1])
        value = kv[2] + 0
        seen += 1
        printf "  %s: %.2fx\n", kv[1], value
        if (value < floor) {
            printf "  ^^^ below the %.2fx floor\n", floor
            bad = 1
        }
    }
    END {
        if (seen == 0) {
            print "error: no optimized_vs_seed_speedup entries found" > "/dev/stderr"
            exit 2
        }
        exit bad
    }
' "$file"
echo "bench gate OK"
