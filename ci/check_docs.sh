#!/usr/bin/env bash
# Documentation gate.
#
# Builds the rustdoc of every workspace crate (no dependencies) with
# warnings promoted to errors: broken intra-doc links, malformed doc
# markup and bare URLs all fail the gate. Combined with the
# `#![warn(missing_docs)]` attribute every first-party crate root
# carries, this keeps new public API from landing undocumented.
#
# Doc *examples* are not run here — they execute as doctests under plain
# `cargo test`, which CI runs separately.
#
# Usage:
#   ci/check_docs.sh
set -euo pipefail

echo "Documentation gate (cargo doc --no-deps, warnings are errors)"
if RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q; then
    echo "docs gate OK (rendered under target/doc)"
else
    echo "docs gate FAILED: fix the rustdoc warnings above (broken links," >&2
    echo "missing docs on public items, malformed markup)" >&2
    exit 1
fi
