#!/usr/bin/env bash
# Static-invariant gate.
#
# Builds and runs kyoto-lint over the whole workspace: nondet-iter,
# wall-clock, unsafe-safety-comment, cluster-no-panic and the frozen-code
# hash check against ci/frozen_hashes.txt. Any diagnostic fails the gate.
#
# Diagnostics are written to $LINT_OUT (default: target/lint) so CI can
# upload them as an artifact on failure.
#
# Usage:
#   ci/check_lint.sh
set -euo pipefail

out="${LINT_OUT:-target/lint}"
mkdir -p "$out"

echo "Static-invariant gate (kyoto-lint --workspace)"
if cargo run --release -q -p kyoto-lint -- --workspace | tee "$out/diagnostics.txt"; then
    echo "lint gate OK (diagnostics in $out/diagnostics.txt)"
else
    echo "lint gate FAILED: see $out/diagnostics.txt — suppress only with" >&2
    echo "a reasoned 'kyoto-lint: allow(<rule>): <why>' on the flagged line" >&2
    exit 1
fi
