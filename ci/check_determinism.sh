#!/usr/bin/env bash
# Determinism gate.
#
# Runs the figures binary twice over a representative target set — once with
# the serial engine and once with `--parallel-engine` (including the
# cloudscale scenario, whose quick sweep runs 2- and 4-socket machines, the
# first placements that scale the socket-parallel engine past two threads,
# the fleet scenario, whose clusters run their cells on scoped threads
# under the same flag, the churn scenario — fleet dynamics: seeded VM
# arrival/departure streams plus a scripted drain/join cycle, in both
# planner modes — the failures scenario: injected cell crashes,
# slowdowns and mid-migration aborts, whose fault plan is a pure function
# of (seed, epoch) — and the service scenario: a request trace replayed
# through the kyoto-service admission controller, whose table embeds the
# telemetry record stream and a mid-trace checkpoint/restore check that
# panics on divergence) — and fails on any byte of divergence. A third
# serial run guards against run-to-run nondeterminism (uninitialised
# state, map iteration order, ...).
#
# `--no-timing` suppresses the wall-clock lines, so the whole report is
# byte-comparable. Outputs land in $DETERMINISM_OUT (default:
# target/determinism) so CI can upload them as artifacts.
#
# Usage:
#   ci/check_determinism.sh                 # builds figures if needed
#   FIGURES_BIN=target/release/figures ci/check_determinism.sh
set -euo pipefail

bin="${FIGURES_BIN:-target/release/figures}"
out="${DETERMINISM_OUT:-target/determinism}"
targets=(fig1 fig9 cloudscale fleet churn failures service)

if [ ! -x "$bin" ]; then
    cargo build --release -p kyoto-bench --bin figures
fi
mkdir -p "$out"

echo "Determinism gate over: ${targets[*]} (quick fidelity)"
"$bin" --quick --no-timing "${targets[@]}" > "$out/serial.txt"
"$bin" --quick --no-timing --parallel-engine "${targets[@]}" > "$out/parallel-engine.txt"
"$bin" --quick --no-timing "${targets[@]}" > "$out/serial-rerun.txt"

if ! diff -u "$out/serial.txt" "$out/parallel-engine.txt"; then
    echo "determinism gate FAILED: --parallel-engine changed figure bytes" >&2
    exit 1
fi
if ! diff -u "$out/serial.txt" "$out/serial-rerun.txt"; then
    echo "determinism gate FAILED: two serial runs disagree" >&2
    exit 1
fi
echo "determinism gate OK (outputs in $out)"
