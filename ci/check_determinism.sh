#!/usr/bin/env bash
# Determinism gate.
#
# Runs the figures binary twice over a representative target set — once with
# the serial engine and once with `--parallel-engine` (including the
# cloudscale scenario, whose quick sweep runs 2- and 4-socket machines, the
# first placements that scale the socket-parallel engine past two threads,
# the fleet scenario, whose clusters run their cells on scoped threads
# under the same flag, the churn scenario — fleet dynamics: seeded VM
# arrival/departure streams plus a scripted drain/join cycle, in both
# planner modes — the failures scenario: injected cell crashes,
# slowdowns and mid-migration aborts, whose fault plan is a pure function
# of (seed, epoch) — the service scenario: a request trace replayed
# through the kyoto-service admission controller, whose table embeds the
# telemetry record stream and a mid-trace checkpoint/restore check that
# panics on divergence — and the interactive scenario: sleep-mostly VMs
# whose Ready/Running/Blocked lifecycle exercises the engine's
# blocked-slot skip and the seeded wake-event sources under both
# engines) — and fails on any byte of divergence. A third
# serial run guards against run-to-run nondeterminism (uninitialised
# state, map iteration order, ...).
#
# The cycle-domain trace plane is held to the same bar: a second pass runs
# a traced target set (fig9, fleet, service, interactive — the last one
# covering vm.block/vm.wake instants and blocked-cycle counters) with
# `--trace-out`, byte-
# comparing the trace files across serial, `--parallel-engine` and a serial
# rerun — trace timestamps are simulated cycles, so any drift is a real
# determinism bug, not clock noise. One extra run exports Chrome JSON and
# validates it (the figures binary validates before writing; `python3 -m
# json.tool` re-checks externally when python3 is on PATH).
#
# `--no-timing` suppresses the wall-clock lines, so the whole report is
# byte-comparable. Outputs land in $DETERMINISM_OUT (default:
# target/determinism) so CI can upload them as artifacts — trace files
# included.
#
# Usage:
#   ci/check_determinism.sh                 # builds figures if needed
#   FIGURES_BIN=target/release/figures ci/check_determinism.sh
set -euo pipefail

bin="${FIGURES_BIN:-target/release/figures}"
out="${DETERMINISM_OUT:-target/determinism}"
targets=(fig1 fig9 cloudscale fleet churn failures service interactive)

if [ ! -x "$bin" ]; then
    cargo build --release -p kyoto-bench --bin figures
fi
mkdir -p "$out"

echo "Determinism gate over: ${targets[*]} (quick fidelity)"
"$bin" --quick --no-timing "${targets[@]}" > "$out/serial.txt"
"$bin" --quick --no-timing --parallel-engine "${targets[@]}" > "$out/parallel-engine.txt"
"$bin" --quick --no-timing "${targets[@]}" > "$out/serial-rerun.txt"

if ! diff -u "$out/serial.txt" "$out/parallel-engine.txt"; then
    echo "determinism gate FAILED: --parallel-engine changed figure bytes" >&2
    exit 1
fi
if ! diff -u "$out/serial.txt" "$out/serial-rerun.txt"; then
    echo "determinism gate FAILED: two serial runs disagree" >&2
    exit 1
fi

trace_targets=(fig9 fleet service interactive)
echo "Trace determinism gate over: ${trace_targets[*]} (quick fidelity)"
"$bin" --quick --no-timing "${trace_targets[@]}" --trace-out "$out/trace-serial.txt" > /dev/null
"$bin" --quick --no-timing --parallel-engine "${trace_targets[@]}" --trace-out "$out/trace-parallel-engine.txt" > /dev/null
"$bin" --quick --no-timing "${trace_targets[@]}" --trace-out "$out/trace-serial-rerun.txt" > /dev/null

if ! diff -u "$out/trace-serial.txt" "$out/trace-parallel-engine.txt"; then
    echo "determinism gate FAILED: --parallel-engine changed trace bytes" >&2
    exit 1
fi
if ! diff -u "$out/trace-serial.txt" "$out/trace-serial-rerun.txt"; then
    echo "determinism gate FAILED: two serial trace runs disagree" >&2
    exit 1
fi

# Perfetto export: the binary validates the JSON before writing (it aborts
# on malformed output); re-check with python when available.
"$bin" --quick --no-timing service --trace-out "$out/trace-service.json" > /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$out/trace-service.json" > /dev/null
fi
echo "determinism gate OK (outputs in $out)"
